(* The domain pool (lib/harness/explorer_pool.ml):

   - seed -> verdict determinism: the same case produces a bit-identical
     outcome (verdict, op count, step count, lin status) whether run solo
     or through a pool of worker domains, across fair, PCT, fault-plan and
     churn schedules — the worker-isolation invariant the pool's whole
     design rests on;
   - results come back complete and in input order;
   - [find_failure] agrees with the solo sweep on which case fails and on
     its verdict, with cancellation enabled;
   - per-case master PRNG streams for distinct seeds never overlap
     (QCheck over seed ranges): sharding a seed range across workers can
     never make two cases draw the same schedule randomness. *)

open Qs_harness
module Scheme = Qs_smr.Scheme
module Prng = Qs_util.Prng

(* A deliberately mixed batch: every strategy family the fast paths in the
   scheduler specialize (fair inline, PCT change-point windows, fault
   bail-outs, churn respawns) — if pooled execution diverged from solo
   anywhere, the place it would show is exactly one of these. *)
let mixed_batch () =
  let base ~ds ~scheme ~seed = Explorer.default_case ~ds ~scheme ~seed in
  [ base ~ds:Cset.List ~scheme:Scheme.Hp ~seed:11;
    base ~ds:Cset.Skiplist ~scheme:Scheme.Cadence ~seed:12;
    { (base ~ds:Cset.List ~scheme:Scheme.Qsense ~seed:13) with
      strategy = Pct { depth = 3 } };
    { (base ~ds:Cset.Bst ~scheme:Scheme.Qsense ~seed:14) with
      faults =
        Explorer.plan Explorer.Stalls ~n:4 ~duration:400_000 ~seed:14 };
    { (base ~ds:Cset.Hashtable ~scheme:Scheme.Cadence ~seed:15) with
      faults = Explorer.plan Explorer.Churn ~n:4 ~duration:400_000 ~seed:15 }
  ]

let check_outcome_eq name (a : Explorer.outcome) (b : Explorer.outcome) =
  Alcotest.(check string)
    (name ^ ": verdict")
    (Explorer.verdict_to_string a.verdict)
    (Explorer.verdict_to_string b.verdict);
  Alcotest.(check int) (name ^ ": ops") a.ops b.ops;
  Alcotest.(check int) (name ^ ": steps") a.steps b.steps;
  Alcotest.(check bool) (name ^ ": lin status") true (a.lin = b.lin)

let test_solo_vs_pool_bit_identical () =
  let batch = mixed_batch () in
  let solo = List.map (fun c -> (c, Explorer.run_one c)) batch in
  let pooled = Explorer_pool.outcomes ~jobs:3 batch in
  Alcotest.(check int) "complete" (List.length solo) (List.length pooled);
  List.iter2
    (fun (c, o) (c', o') ->
      Alcotest.(check string)
        "input order preserved" (Explorer.to_string c) (Explorer.to_string c');
      check_outcome_eq (Explorer.to_string c) o o')
    solo pooled

let test_repeat_stability () =
  (* Pooled twice with different job counts: domain scheduling order must
     not leak into outcomes. *)
  let batch = mixed_batch () in
  let a = Explorer_pool.outcomes ~jobs:2 batch in
  let b = Explorer_pool.outcomes ~jobs:4 batch in
  List.iter2 (fun (_, o) (_, o') -> check_outcome_eq "jobs=2 vs jobs=4" o o') a b

let test_find_failure_matches_solo () =
  (* A planted leak among clean cases: the pool's first-failure hunt (with
     cancellation) must land on the same case and verdict class as the
     solo sweep. *)
  let clean seed = Explorer.default_case ~ds:Cset.List ~scheme:Scheme.Hp ~seed in
  let planted =
    { (Explorer.default_case ~ds:Cset.List ~scheme:Scheme.None_ ~seed:3) with
      Explorer.capacity = 256;
      ops_per_proc = 4_000;
      duration = 10_000_000 }
  in
  let batch = [ clean 1; clean 2; planted; clean 4; clean 5 ] in
  let solo =
    List.find_opt
      (fun (_, (o : Explorer.outcome)) -> o.verdict <> Explorer.Pass)
      (List.map (fun c -> (c, Explorer.run_one c)) batch)
  in
  let pooled = Explorer_pool.find_failure ~jobs:3 batch in
  match (solo, pooled) with
  | None, None -> Alcotest.fail "planted failure not found at all"
  | Some (c, o), Some (c', o') ->
    Alcotest.(check string)
      "same failing case" (Explorer.to_string c) (Explorer.to_string c');
    Alcotest.(check bool)
      "same verdict class" true
      (Explorer.same_class o.verdict o'.verdict)
  | Some _, None -> Alcotest.fail "pool missed the failure solo found"
  | None, Some _ -> Alcotest.fail "pool found a failure solo did not"

(* --- PRNG stream disjointness -------------------------------------------- *)

(* [Explorer.run_one] derives every per-process stream by [Prng.split] from
   a per-case master seeded [c.seed + 7919]. Distinct seeds must give
   streams that never collide — otherwise two cases sharded to different
   workers could replay the same schedule randomness and the coverage
   counts would double-count one neighborhood. 63-bit SplitMix output makes
   a collision within a few hundred draws astronomically unlikely unless
   the derivation is broken (e.g. split returning the parent state), which
   is what this pins. *)
let draws_of_seed ~seed ~procs ~len =
  let master = Prng.create ~seed:(seed + 7919) in
  let streams = Array.init procs (fun _ -> Prng.split master) in
  Array.to_list streams
  |> List.concat_map (fun g -> List.init len (fun _ -> Prng.next g))

let test_streams_disjoint =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"worker PRNG streams never overlap" ~count:50
       QCheck.(pair (int_bound 1_000_000) (int_bound 6 |> map (fun j -> j + 2)))
       (fun (base, range) ->
         let module IS = Set.Make (Int) in
         let all = Hashtbl.create 512 in
         List.iter
           (fun seed ->
             List.iter
               (fun d ->
                 (match Hashtbl.find_opt all d with
                 | Some seed' when seed' <> seed ->
                   QCheck.Test.fail_reportf
                     "draw collision between seeds %d and %d" seed' seed
                 | _ -> ());
                 Hashtbl.replace all d seed)
               (draws_of_seed ~seed ~procs:4 ~len:64))
           (Explorer.seeds ~base ~count:range);
         true))

let suite =
  [ Alcotest.test_case "solo vs pool: bit-identical outcomes" `Slow
      test_solo_vs_pool_bit_identical;
    Alcotest.test_case "jobs count does not change outcomes" `Slow
      test_repeat_stability;
    Alcotest.test_case "find_failure matches solo sweep" `Slow
      test_find_failure_matches_solo;
    test_streams_disjoint
  ]
