(* Workload specification and pre-generated stream tests. *)

module Spec = Qs_workload.Spec
module Gen = Qs_workload.Generator

let test_spec_validation () =
  Alcotest.check_raises "bad range"
    (Invalid_argument "Spec.make: key_range must be positive") (fun () ->
      ignore (Spec.make ~key_range:0 ~update_pct:10));
  Alcotest.check_raises "bad pct"
    (Invalid_argument "Spec.make: update_pct must be in [0, 100]") (fun () ->
      ignore (Spec.make ~key_range:10 ~update_pct:101))

let test_spec_distribution () =
  let spec = Spec.make ~key_range:100 ~update_pct:40 in
  let prng = Qs_util.Prng.create ~seed:5 in
  let n = 100_000 in
  let searches = ref 0 and inserts = ref 0 and deletes = ref 0 in
  for _ = 1 to n do
    match Spec.pick prng spec with
    | Spec.Search k | Spec.Insert k | Spec.Delete k when k < 0 || k >= 100 ->
      Alcotest.fail "key out of range"
    | Spec.Search _ -> incr searches
    | Spec.Insert _ -> incr inserts
    | Spec.Delete _ -> incr deletes
  done;
  let pct x = 100 * x / n in
  Alcotest.(check bool) "searches ~60%" true (abs (pct !searches - 60) <= 2);
  Alcotest.(check bool) "inserts ~20%" true (abs (pct !inserts - 20) <= 2);
  Alcotest.(check bool) "deletes ~20%" true (abs (pct !deletes - 20) <= 2)

let test_initial_keys () =
  let spec = Spec.make ~key_range:100 ~update_pct:50 in
  let keys = Spec.initial_keys spec in
  Alcotest.(check int) "half the range" 50 (List.length keys);
  List.iter
    (fun k ->
      if k < 0 || k >= 100 then Alcotest.fail "initial key out of range";
      if k mod 2 <> 0 then Alcotest.fail "expected even keys")
    keys;
  Alcotest.(check (list int)) "distinct" (List.sort_uniq compare keys) keys

let test_generator_deterministic () =
  let spec = Spec.updates_50 ~key_range:64 in
  let a = Gen.make spec ~n_processes:3 ~ops_per_process:500 ~seed:9 in
  let b = Gen.make spec ~n_processes:3 ~ops_per_process:500 ~seed:9 in
  for pid = 0 to 2 do
    Alcotest.(check bool) "same stream" true (Gen.stream a ~pid = Gen.stream b ~pid)
  done;
  let c = Gen.make spec ~n_processes:3 ~ops_per_process:500 ~seed:10 in
  Alcotest.(check bool) "different seed differs" true
    (Gen.stream a ~pid:0 <> Gen.stream c ~pid:0)

let test_generator_streams_independent () =
  let spec = Spec.updates_50 ~key_range:64 in
  let g = Gen.make spec ~n_processes:2 ~ops_per_process:300 ~seed:4 in
  Alcotest.(check bool) "streams differ across pids" true
    (Gen.stream g ~pid:0 <> Gen.stream g ~pid:1);
  Alcotest.(check int) "length" 300 (Gen.length g);
  Alcotest.(check int) "processes" 2 (Gen.n_processes g)

let test_generator_census () =
  let spec = Spec.make ~key_range:64 ~update_pct:30 in
  let g = Gen.make spec ~n_processes:1 ~ops_per_process:20_000 ~seed:2 in
  let s, i, d = Gen.census (Gen.stream g ~pid:0) in
  Alcotest.(check int) "total" 20_000 (s + i + d);
  Alcotest.(check bool) "updates ~30%" true
    (abs ((100 * (i + d) / 20_000) - 30) <= 2)

(* Regression: ops_per_process = 0 used to pass [make]'s negative-only
   check, then blow up later with Division_by_zero in the cyclic accessor
   ([i mod 0]). It must be rejected up front. *)
let test_generator_zero_ops_rejected () =
  let spec = Spec.updates_50 ~key_range:64 in
  Alcotest.check_raises "zero ops rejected"
    (Invalid_argument "Generator.make: ops_per_process must be positive")
    (fun () -> ignore (Gen.make spec ~n_processes:2 ~ops_per_process:0 ~seed:1));
  Alcotest.check_raises "negative ops rejected"
    (Invalid_argument "Generator.make: ops_per_process must be positive")
    (fun () -> ignore (Gen.make spec ~n_processes:2 ~ops_per_process:(-1) ~seed:1))

(* Regression: odd update percentages used to split asymmetrically —
   update_pct = 1 gave 0% inserts but 1% deletes (integer u/2 for the
   insert threshold, the whole remainder to deletes). The census over a
   large stream must now show both masses within tolerance of u/2 for
   every odd u, and in the extreme u = 1 case inserts must occur at all. *)
let test_spec_odd_pct_split () =
  List.iter
    (fun u ->
      let spec = Spec.make ~key_range:64 ~update_pct:u in
      let prng = Qs_util.Prng.create ~seed:(100 + u) in
      let n = 200_000 in
      let inserts = ref 0 and deletes = ref 0 in
      for _ = 1 to n do
        match Spec.pick prng spec with
        | Spec.Insert _ -> incr inserts
        | Spec.Delete _ -> incr deletes
        | Spec.Search _ -> ()
      done;
      let expect = float_of_int u /. 2. in
      let pct x = 100. *. float_of_int x /. float_of_int n in
      let tol = 0.35 in
      if Float.abs (pct !inserts -. expect) > tol then
        Alcotest.failf "u=%d: inserts %.2f%% (want %.2f%%)" u (pct !inserts)
          expect;
      if Float.abs (pct !deletes -. expect) > tol then
        Alcotest.failf "u=%d: deletes %.2f%% (want %.2f%%)" u (pct !deletes)
          expect;
      if u >= 1 && !inserts = 0 then
        Alcotest.failf "u=%d: no inserts at all" u)
    [ 1; 3; 7; 25; 99 ]

(* Even update percentages must keep the exact pre-fix behaviour: the fix
   only touches the odd leftover percent, so streams generated with even
   [update_pct] (all committed corpora and benches) stay bit-identical. *)
let test_spec_even_pct_unchanged () =
  let spec = Spec.make ~key_range:64 ~update_pct:40 in
  let prng = Qs_util.Prng.create ~seed:77 in
  let reference = Qs_util.Prng.create ~seed:77 in
  for _ = 1 to 10_000 do
    let op = Spec.pick prng spec in
    (* replay the pre-fix decision procedure on a mirrored PRNG *)
    let key = Qs_util.Prng.int reference 64 in
    let pct = Qs_util.Prng.percent reference in
    let expected =
      if pct < 20 then Spec.Insert key
      else if pct < 40 then Spec.Delete key
      else Spec.Search key
    in
    if op <> expected then Alcotest.fail "even-pct stream diverged"
  done

let test_latency_recording () =
  let r =
    Qs_harness.Sim_exp.run
      { (Qs_harness.Sim_exp.default_setup ~ds:Qs_harness.Cset.List
           ~scheme:Qs_smr.Scheme.Qsense ~n_processes:2
           ~workload:(Spec.updates_50 ~key_range:64)) with
        duration = 60_000;
        record_latency = true }
  in
  Alcotest.(check int) "one latency per op" r.ops_total (Array.length r.latencies);
  Array.iter
    (fun l -> if l <= 0 then Alcotest.fail "non-positive latency")
    r.latencies

let suite =
  [ Alcotest.test_case "spec validation" `Quick test_spec_validation;
    Alcotest.test_case "spec distribution" `Quick test_spec_distribution;
    Alcotest.test_case "initial keys" `Quick test_initial_keys;
    Alcotest.test_case "generator deterministic" `Quick test_generator_deterministic;
    Alcotest.test_case "generator per-pid streams" `Quick test_generator_streams_independent;
    Alcotest.test_case "generator census" `Quick test_generator_census;
    Alcotest.test_case "generator rejects zero ops" `Quick
      test_generator_zero_ops_rejected;
    Alcotest.test_case "odd update pct splits evenly" `Quick
      test_spec_odd_pct_split;
    Alcotest.test_case "even update pct bit-identical" `Quick
      test_spec_even_pct_unchanged;
    Alcotest.test_case "latency recording" `Quick test_latency_recording
  ]
