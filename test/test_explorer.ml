(* The adversarial schedule explorer (lib/harness/explorer.ml):

   - case serialization round-trips exactly, including fault plans and
     non-trivial strategies, and rejects malformed lines;
   - [run_one] is deterministic (the repro-file contract rests on it);
   - positive controls: the explorer finds the planted unsafety in the
     unsafe (fence-free) HP variant and the leak in the leaky baseline,
     and every such failure shrinks to a smaller case of the same verdict
     class and replays from its saved repro file alone;
   - negative control: the committed corpus of known-clean cases (fair,
     PCT and fault-plan schedules over hp/cadence/qsense) stays clean,
     with linearizability actually checked on the fault-free cases;
   - injected stalls drive QSense through a full fallback round-trip
     (fallback_entries/exits/ticks) while QSBR OOMs under the identical
     schedule. *)

open Qs_harness
module Scheme = Qs_smr.Scheme
module Scheduler = Qs_sim.Scheduler

let case : Explorer.case Alcotest.testable =
  Alcotest.testable
    (fun fmt c -> Format.pp_print_string fmt (Explorer.to_string c))
    ( = )

(* --- serialization ------------------------------------------------------- *)

let round_trip c =
  match Explorer.of_string (Explorer.to_string c) with
  | Ok c' -> Alcotest.check case (Explorer.to_string c) c c'
  | Error e -> Alcotest.failf "of_string failed: %s" e

let test_serialization_round_trip () =
  let base = Explorer.default_case ~ds:Cset.List ~scheme:Scheme.Qsense ~seed:42 in
  round_trip base;
  round_trip { base with ds = Cset.Hashtable; scheme = Scheme.Unsafe_hp };
  round_trip { base with strategy = Pct { depth = 3 }; capacity = 256 };
  round_trip
    { base with
      strategy =
        Targeted
          { victim = 2;
            hook = Qs_intf.Runtime_intf.Hook_scan;
            skip = 5;
            stall = 10_000 } };
  round_trip
    { base with
      faults =
        [ Scheduler.Stall_at { pid = 3; at = 1_000; ticks = 50_000 };
          Scheduler.Crash_at { pid = 1; at = 5_000 };
          Scheduler.Oversleep_spike { pid = 0; at = 2_000; extra = 900 };
          Scheduler.Skew_burst
            { pid = 2; at = 3_000; until_ = 9_000; extra = 70 };
          Scheduler.Churn_at { pid = 1; at = 4_000; ticks = 25_000 } ] };
  (* full fault-level expansions round-trip through the explicit list *)
  round_trip
    { base with
      faults =
        Explorer.plan Explorer.Chaos ~n:base.n_processes
          ~duration:base.duration ~seed:base.seed };
  round_trip
    { base with
      faults =
        Explorer.plan Explorer.Churn ~n:base.n_processes
          ~duration:base.duration ~seed:base.seed }

let test_serialization_rejects_malformed () =
  let expect_error s =
    match Explorer.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted malformed case %S" s
  in
  expect_error "";
  expect_error "ds=list";
  expect_error
    "ds=nosuch scheme=hp n=4 keys=32 upd=50 ops=10 dur=1000 cap=0 switch=0 \
     strat=fair faults=- seed=1";
  expect_error
    "ds=list scheme=hp n=4 keys=32 upd=50 ops=10 dur=1000 cap=0 switch=0 \
     strat=pct faults=- seed=1";
  expect_error
    "ds=list scheme=hp n=4 keys=32 upd=50 ops=10 dur=1000 cap=0 switch=0 \
     strat=fair faults=stall:9 seed=1"

(* --- determinism --------------------------------------------------------- *)

let test_run_one_deterministic () =
  let c =
    { (Explorer.default_case ~ds:Cset.List ~scheme:Scheme.Qsense ~seed:7) with
      Explorer.faults =
        Explorer.plan Explorer.Stalls ~n:4 ~duration:400_000 ~seed:7 }
  in
  let a = Explorer.run_one c and b = Explorer.run_one c in
  Alcotest.(check string)
    "same verdict"
    (Explorer.verdict_to_string a.verdict)
    (Explorer.verdict_to_string b.verdict);
  Alcotest.(check int) "same ops" a.ops b.ops;
  Alcotest.(check int) "same steps" a.steps b.steps;
  Alcotest.(check int) "same frees" a.stats.frees b.stats.frees

(* --- positive controls --------------------------------------------------- *)

let unsafe_hp_case seed =
  { (Explorer.default_case ~ds:Cset.List ~scheme:Scheme.Unsafe_hp ~seed) with
    Explorer.key_range = 8;
    ops_per_proc = 4_000;
    duration = 10_000_000 }

(* The fence in [assign_hp] is load-bearing: without it the explorer's
   fair schedules catch reclamation of hazardously referenced nodes.
   The failure then shrinks and replays from its repro file alone. *)
let test_finds_unsafe_hp_and_shrinks () =
  let failures =
    Explorer.explore (List.map unsafe_hp_case [ 1; 2; 3 ])
  in
  Alcotest.(check bool)
    (Printf.sprintf "unsafe-hp caught (%d/3 seeds)" (List.length failures))
    true
    (List.length failures >= 1);
  let c, o = List.hd failures in
  (match o.Explorer.verdict with
  | Explorer.Uaf _ | Explorer.Double_free _ -> ()
  | v -> Alcotest.failf "expected a memory-safety verdict, got %s"
           (Explorer.verdict_to_string v));
  (* shrink keeps the verdict class and never grows the case *)
  let small, spent = Explorer.shrink ~budget:30 c o.verdict in
  Alcotest.(check bool) "shrink spent within budget" true (spent <= 30);
  Alcotest.(check bool) "shrunk ops <= original" true
    (small.Explorer.ops_per_proc <= c.Explorer.ops_per_proc);
  let o' = Explorer.run_one small in
  Alcotest.(check bool) "shrunk case keeps the verdict class" true
    (Explorer.same_class o.verdict o'.Explorer.verdict);
  (* the saved repro file is self-sufficient *)
  let path = Filename.temp_file "explorer" ".repro" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Explorer.save_repro path small o';
      let replayed = Explorer.load_repro path in
      Alcotest.check case "repro round-trips the case" small replayed;
      let o'' = Explorer.run_one replayed in
      Alcotest.(check bool) "repro replays the verdict class" true
        (Explorer.same_class o'.Explorer.verdict o''.Explorer.verdict))

let test_finds_leak () =
  let c =
    { (Explorer.default_case ~ds:Cset.List ~scheme:Scheme.None_ ~seed:1) with
      Explorer.capacity = 256;
      ops_per_proc = 4_000;
      duration = 10_000_000 }
  in
  match (Explorer.run_one c).verdict with
  | Explorer.Oom _ -> ()
  | v ->
      Alcotest.failf "leaky baseline should exhaust the arena, got %s"
        (Explorer.verdict_to_string v)

(* --- corpus replay (negative control) ------------------------------------ *)

let test_corpus_clean () =
  (* dune runtest runs in the test directory (the corpus is a declared
     dep); a bare `dune exec test/main.exe` runs from the project root *)
  let path =
    if Sys.file_exists "explorer.corpus" then "explorer.corpus"
    else "test/explorer.corpus"
  in
  let cases = Explorer.load_corpus path in
  Alcotest.(check bool) "corpus is non-trivial" true (List.length cases >= 12);
  let failures = Explorer.explore cases in
  List.iter
    (fun (c, o) ->
      Alcotest.failf "corpus case failed: %s -> %s" (Explorer.to_string c)
        (Explorer.verdict_to_string o.Explorer.verdict))
    failures;
  (* the fault-free cases really went through the linearizability check *)
  let checked =
    List.exists
      (fun c ->
        c.Explorer.faults = []
        && (Explorer.run_one c).Explorer.lin = Explorer.Lin_ok)
      cases
  in
  Alcotest.(check bool) "linearizability checked on fault-free cases" true
    checked

(* --- QSense fallback round-trip under injected stalls -------------------- *)

let stall_case ~scheme ~seed =
  { (Explorer.default_case ~ds:Cset.List ~scheme ~seed) with
    Explorer.ops_per_proc = 4_000;
    duration = 2_500_000;
    capacity = 300;
    faults = [ Scheduler.Stall_at { pid = 3; at = 100_000; ticks = 1_500_000 } ] }

let test_qsense_fallback_round_trip () =
  let o = Explorer.run_one (stall_case ~scheme:Scheme.Qsense ~seed:5) in
  (match o.Explorer.verdict with
  | Explorer.Pass -> ()
  | v ->
      Alcotest.failf "qsense should survive the stall, got %s"
        (Explorer.verdict_to_string v));
  Alcotest.(check bool) "entered fallback" true (o.stats.fallback_entries >= 1);
  Alcotest.(check bool) "returned to the fast path" true
    (o.stats.fallback_exits >= 1);
  Alcotest.(check bool) "spent measurable time in fallback" true
    (o.stats.fallback_ticks > 0);
  Alcotest.(check bool) "ends on the fast path" true
    (o.stats.mode = Qs_smr.Smr_intf.Fast);
  Alcotest.(check bool) "kept reclaiming" true (o.stats.frees > 0)

(* Differential: the identical schedule kills QSBR. *)
let test_qsbr_ooms_on_same_schedule () =
  let o = Explorer.run_one (stall_case ~scheme:Scheme.Qsbr ~seed:5) in
  match o.Explorer.verdict with
  | Explorer.Oom t ->
      Alcotest.(check bool) "exhausted after the stall began" true (t >= 100_000)
  | v ->
      Alcotest.failf "qsbr should OOM under the stall, got %s"
        (Explorer.verdict_to_string v)

(* --- fault plans --------------------------------------------------------- *)

let test_plan_deterministic () =
  List.iter
    (fun level ->
      let p1 = Explorer.plan level ~n:4 ~duration:400_000 ~seed:9 in
      let p2 = Explorer.plan level ~n:4 ~duration:400_000 ~seed:9 in
      Alcotest.(check bool)
        (Explorer.fault_level_to_string level ^ " plan deterministic")
        true (p1 = p2))
    [ Explorer.No_faults; Explorer.Stalls; Explorer.Victim_stall;
      Explorer.Chaos; Explorer.Churn ];
  Alcotest.(check bool) "chaos plan non-empty" true
    (Explorer.plan Explorer.Chaos ~n:4 ~duration:400_000 ~seed:9 <> []);
  Alcotest.(check int) "no_faults plan empty" 0
    (List.length (Explorer.plan Explorer.No_faults ~n:4 ~duration:400_000 ~seed:9));
  (* the churn plan carries at least two leave/rejoin injections, and they
     never target pid 0 exclusively-gated contexts outside [1, n) *)
  let churns =
    List.filter_map
      (function
        | Qs_sim.Scheduler.Churn_at { pid; at; ticks } -> Some (pid, at, ticks)
        | _ -> None)
      (Explorer.plan Explorer.Churn ~n:4 ~duration:400_000 ~seed:9)
  in
  Alcotest.(check bool) "churn plan injects at least two leave/rejoins" true
    (List.length churns >= 2);
  List.iter
    (fun (pid, at, ticks) ->
      Alcotest.(check bool) "churn pid in range" true (pid >= 0 && pid < 4);
      Alcotest.(check bool) "churn timing positive" true (at > 0 && ticks > 0))
    churns

(* --- churn: leave/rejoin + orphan adoption stays safe --------------------- *)

let churn_case ~scheme ~seed =
  let c = Explorer.default_case ~ds:Cset.List ~scheme ~seed in
  { c with
    Explorer.faults =
      Explorer.plan Explorer.Churn ~n:c.Explorer.n_processes
        ~duration:c.Explorer.duration ~seed }

let test_churn_cases_pass () =
  List.iter
    (fun scheme ->
      let o = Explorer.run_one (churn_case ~scheme ~seed:31) in
      match o.Explorer.verdict with
      | Explorer.Pass -> ()
      | v ->
        Alcotest.failf "%s under churn: %s" (Scheme.to_string scheme)
          (Explorer.verdict_to_string v))
    [ Scheme.Qsbr; Scheme.Hp; Scheme.Cadence; Scheme.Qsense ]

let test_churn_deterministic () =
  let c = churn_case ~scheme:Scheme.Qsense ~seed:33 in
  let a = Explorer.run_one c and b = Explorer.run_one c in
  Alcotest.(check string)
    "same verdict"
    (Explorer.verdict_to_string a.Explorer.verdict)
    (Explorer.verdict_to_string b.Explorer.verdict);
  Alcotest.(check int) "same ops" a.Explorer.ops b.Explorer.ops;
  Alcotest.(check int) "same steps" a.Explorer.steps b.Explorer.steps

let suite =
  [ Alcotest.test_case "case serialization round-trips" `Quick
      test_serialization_round_trip;
    Alcotest.test_case "malformed cases rejected" `Quick
      test_serialization_rejects_malformed;
    Alcotest.test_case "run_one is deterministic" `Quick
      test_run_one_deterministic;
    Alcotest.test_case "finds unsafe-hp, shrinks, replays repro" `Quick
      test_finds_unsafe_hp_and_shrinks;
    Alcotest.test_case "finds the leaky baseline's leak" `Quick test_finds_leak;
    Alcotest.test_case "committed corpus stays clean" `Quick test_corpus_clean;
    Alcotest.test_case "stalls drive qsense through fallback and back" `Quick
      test_qsense_fallback_round_trip;
    Alcotest.test_case "qsbr OOMs on the same stall schedule" `Quick
      test_qsbr_ooms_on_same_schedule;
    Alcotest.test_case "fault plans are deterministic" `Quick
      test_plan_deterministic;
    Alcotest.test_case "churn cases pass on the sound schemes" `Slow
      test_churn_cases_pass;
    Alcotest.test_case "churn runs are deterministic" `Quick
      test_churn_deterministic
  ]
