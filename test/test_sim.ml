(* Tests for the deterministic TSO simulator: store-buffer semantics,
   fences, atomics, roosters, clocks, delay injection, determinism. *)

open Qs_sim
module R = Sim_runtime

let cfg ?(n_cores = 2) ?(seed = 1) ?rooster_interval ?(capacity = 1024)
    ?(skew = 0) ?(oversleep = 0) ?kill_roosters_at ?(drain = Scheduler.No_drain) () =
  { (Scheduler.default_config ~n_cores ~seed) with
    rooster_interval;
    store_buffer_capacity = capacity;
    clock_skew = skew;
    rooster_oversleep = oversleep;
    kill_roosters_at;
    drain }

(* A plain write is invisible to the other process until a fence. *)
let test_tso_staleness () =
  let s = Scheduler.create (cfg ()) in
  let x = R.plain 0 in
  let seen_before_fence = ref (-1) in
  let seen_after_fence = ref (-1) in
  let flag = R.atomic false in
  Scheduler.spawn s ~pid:0 (fun () ->
      R.write x 1;
      (* let process 1 observe before we fence *)
      for _ = 1 to 50 do
        R.yield ();
        R.charge 5
      done;
      R.fence ();
      R.set flag true);
  Scheduler.spawn s ~pid:1 (fun () ->
      R.charge 20;
      seen_before_fence := R.read x;
      (* wait for the fence *)
      while not (R.get flag) do
        R.charge 5
      done;
      seen_after_fence := R.read x);
  Scheduler.run_all s;
  Alcotest.(check (list (pair int reject))) "no failures" [] (Scheduler.failures s);
  Alcotest.(check int) "stale before fence" 0 !seen_before_fence;
  Alcotest.(check int) "visible after fence" 1 !seen_after_fence

(* Store-to-load forwarding: the writer reads its own buffered store. *)
let test_store_to_load_forwarding () =
  let s = Scheduler.create (cfg ~n_cores:1 ()) in
  let x = R.plain 0 in
  let v =
    Scheduler.exec s ~pid:0 (fun () ->
        R.write x 42;
        R.read x)
  in
  Alcotest.(check int) "own store visible" 42 v;
  Alcotest.(check int) "still buffered" 1 (Cell.pending_count x)

(* Atomic ops by the writer drain its own buffer (x86 lock semantics). *)
let test_atomic_drains_buffer () =
  let s = Scheduler.create (cfg ~n_cores:1 ()) in
  let x = R.plain 0 in
  let a = R.atomic 0 in
  Scheduler.exec s ~pid:0 (fun () ->
      R.write x 7;
      R.set a 1);
  Alcotest.(check int) "committed" 7 (Cell.read_committed x)

(* Buffer capacity: oldest store commits when the buffer overflows. *)
let test_capacity_overflow () =
  let s = Scheduler.create (cfg ~n_cores:1 ~capacity:4 ()) in
  let cells = Array.init 10 (fun _ -> R.plain 0) in
  Scheduler.exec s ~pid:0 (fun () ->
      Array.iteri (fun i c -> R.write c (i + 1)) cells);
  (* 10 writes, capacity 4: the 6 oldest must have committed *)
  for i = 0 to 5 do
    Alcotest.(check int) (Printf.sprintf "cell %d committed" i) (i + 1)
      (Cell.read_committed cells.(i))
  done;
  Alcotest.(check int) "newest still pending" 0 (Cell.read_committed cells.(9))

(* Roosters flush the worker's buffer within T (+ oversleep + switch). *)
let test_rooster_flush () =
  let s = Scheduler.create (cfg ~n_cores:1 ~rooster_interval:100 ()) in
  let x = R.plain 0 in
  Scheduler.exec s ~pid:0 (fun () ->
      R.write x 5;
      R.charge 500);
  Alcotest.(check bool) "rooster fired" true (Scheduler.rooster_fires s > 0);
  Alcotest.(check int) "flushed by rooster" 5 (Cell.read_committed x)

let test_kill_roosters () =
  let s =
    Scheduler.create (cfg ~n_cores:1 ~rooster_interval:100 ~kill_roosters_at:50 ())
  in
  let x = R.plain 0 in
  Scheduler.exec s ~pid:0 (fun () ->
      R.write x 5;
      R.charge 500);
  Alcotest.(check int) "no rooster fired" 0 (Scheduler.rooster_fires s);
  Alcotest.(check int) "still buffered" 0 (Cell.read_committed x)

let test_cas_semantics () =
  let s = Scheduler.create (cfg ~n_cores:1 ()) in
  let a = R.atomic "a" in
  let r =
    Scheduler.exec s ~pid:0 (fun () ->
        let v0 = R.get a in
        let ok1 = R.cas a v0 "b" in
        let ok2 = R.cas a v0 "c" in
        (* stale expected *)
        (ok1, ok2, R.get a))
  in
  Alcotest.(check (triple bool bool string)) "cas" (true, false, "b") r

let test_faa () =
  let s = Scheduler.create (cfg ~n_cores:1 ()) in
  let a = R.atomic 10 in
  let old =
    Scheduler.exec s ~pid:0 (fun () ->
        let o = R.fetch_and_add a 5 in
        o)
  in
  Alcotest.(check int) "old value" 10 old;
  Alcotest.(check int) "new value" 15 (Cell.read_committed a)

(* Virtual time: parallel cores advance independently — n cores doing the
   same work finish at roughly the same virtual time as one core. *)
let test_parallel_virtual_time () =
  let work () =
    let a = R.plain 0 in
    for i = 1 to 1000 do
      R.write a i
    done
  in
  let t1 =
    let s = Scheduler.create (cfg ~n_cores:1 ~seed:3 ()) in
    Scheduler.spawn s ~pid:0 work;
    Scheduler.run_all s;
    Scheduler.max_clock s
  in
  let t4 =
    let s = Scheduler.create (cfg ~n_cores:4 ~seed:3 ()) in
    for pid = 0 to 3 do
      Scheduler.spawn s ~pid work
    done;
    Scheduler.run_all s;
    Scheduler.max_clock s
  in
  Alcotest.(check bool)
    (Printf.sprintf "4 cores not 4x slower (t1=%d t4=%d)" t1 t4)
    true
    (t4 < 2 * t1)

let test_self_and_now () =
  let s = Scheduler.create (cfg ~n_cores:3 ()) in
  let ids = Array.make 3 (-1) in
  for pid = 0 to 2 do
    Scheduler.spawn s ~pid (fun () ->
        ids.(pid) <- R.self ();
        let t0 = R.now () in
        R.charge 100;
        let t1 = R.now () in
        assert (t1 >= t0 + 100))
  done;
  Scheduler.run_all s;
  Alcotest.(check (array int)) "self ids" [| 0; 1; 2 |] ids;
  Alcotest.(check (list (pair int reject))) "no failures" [] (Scheduler.failures s)

let test_clock_skew_bounded () =
  let skew = 50 in
  let s = Scheduler.create (cfg ~n_cores:4 ~skew ()) in
  for pid = 0 to 3 do
    Scheduler.spawn s ~pid (fun () ->
        let t = R.now () in
        assert (t <= Scheduler.max_clock s + skew))
  done;
  Scheduler.run_all s;
  Alcotest.(check (list (pair int reject))) "no failures" [] (Scheduler.failures s)

let test_sleep_until () =
  let s = Scheduler.create (cfg ~n_cores:2 ()) in
  let woke_at = ref 0 in
  let other_progress = ref 0 in
  Scheduler.spawn s ~pid:0 (fun () ->
      R.sleep_until 10_000;
      woke_at := R.now ());
  Scheduler.spawn s ~pid:1 (fun () ->
      while R.now () < 5_000 do
        R.charge 50;
        incr other_progress
      done);
  Scheduler.run_all s;
  Alcotest.(check bool) "woke after target" true (!woke_at >= 10_000);
  Alcotest.(check bool) "other made progress meanwhile" true (!other_progress > 50)

(* A sleeping process's buffer is still flushed by its core's rooster. *)
let test_rooster_flushes_sleeper () =
  let s = Scheduler.create (cfg ~n_cores:1 ~rooster_interval:1_000 ()) in
  let x = R.plain 0 in
  Scheduler.exec s ~pid:0 (fun () ->
      R.write x 9;
      R.sleep_until 20_000);
  Alcotest.(check int) "flushed during sleep" 9 (Cell.read_committed x)

(* Exceptions in workers are recorded, not propagated by run_all. *)
let test_failure_recorded () =
  let s = Scheduler.create (cfg ~n_cores:2 ()) in
  Scheduler.spawn s ~pid:0 (fun () -> failwith "boom");
  Scheduler.spawn s ~pid:1 (fun () -> R.charge 10);
  Scheduler.run_all s;
  match Scheduler.failures s with
  | [ (0, Failure msg) ] when msg = "boom" -> ()
  | _ -> Alcotest.fail "expected exactly one recorded failure"

let test_exec_reraises () =
  let s = Scheduler.create (cfg ~n_cores:1 ()) in
  Alcotest.check_raises "exec re-raises" (Failure "bang") (fun () ->
      Scheduler.exec s ~pid:0 (fun () -> failwith "bang"));
  Alcotest.(check (list (pair int reject))) "failures cleared" [] (Scheduler.failures s)

(* Full determinism: two runs with the same seed produce identical clocks,
   step counts and memory contents. *)
let run_det seed =
  let s = Scheduler.create (cfg ~n_cores:4 ~seed ()) in
  let shared = R.atomic 0 in
  let accum = R.plain 0 in
  for pid = 0 to 3 do
    Scheduler.spawn s ~pid (fun () ->
        for _ = 1 to 200 do
          let v = R.get shared in
          if R.cas shared v (v + 1) then R.write accum (R.read accum + 1);
          R.fence ()
        done)
  done;
  Scheduler.run_all s;
  (Scheduler.max_clock s, Scheduler.steps s, Cell.read_committed shared, Cell.read_committed accum)

let test_determinism () =
  let a = run_det 99 and b = run_det 99 in
  Alcotest.(check bool) "identical runs" true (a = b);
  let c = run_det 100 in
  Alcotest.(check bool) "different seed differs" true (a <> c)

(* The drain policy eventually commits buffered stores without fences. *)
let test_prob_drain () =
  let s = Scheduler.create (cfg ~n_cores:1 ~drain:(Scheduler.Prob 0.5) ()) in
  let x = R.plain 0 in
  Scheduler.exec s ~pid:0 (fun () ->
      R.write x 3;
      for _ = 1 to 200 do
        R.charge 1;
        R.yield ()
      done);
  Alcotest.(check int) "drained probabilistically" 3 (Cell.read_committed x)

(* Remote-access cost: ping-pong on one cell costs more than local reuse. *)
let test_contention_cost () =
  let run n_cores =
    let s = Scheduler.create (cfg ~n_cores ~seed:5 ()) in
    let hot = R.atomic 0 in
    for pid = 0 to n_cores - 1 do
      Scheduler.spawn s ~pid (fun () ->
          for _ = 1 to 500 do
            let v = R.get hot in
            ignore (R.cas hot v (v + 1))
          done)
    done;
    Scheduler.run_all s;
    Scheduler.max_clock s
  in
  let solo = run 1 and contended = run 4 in
  Alcotest.(check bool)
    (Printf.sprintf "contention costs (solo=%d contended=%d)" solo contended)
    true (contended > solo)

(* reset_clocks: clocks restart at zero, buffers drain, roosters reschedule *)
let test_reset_clocks () =
  let s = Scheduler.create (cfg ~n_cores:2 ~rooster_interval:500 ()) in
  let x = R.plain 0 in
  Scheduler.exec s ~pid:0 (fun () ->
      R.charge 10_000;
      R.write x 3);
  Alcotest.(check bool) "clock advanced" true (Scheduler.clock_of s ~pid:0 >= 10_000);
  Scheduler.reset_clocks s;
  Alcotest.(check int) "clock reset" 0 (Scheduler.clock_of s ~pid:0);
  Alcotest.(check int) "buffer drained" 3 (Cell.read_committed x);
  (* roosters fire again on the fresh timeline *)
  let fires_before = Scheduler.rooster_fires s in
  Scheduler.exec s ~pid:0 (fun () -> R.charge 2_000);
  Alcotest.(check bool) "roosters rescheduled" true
    (Scheduler.rooster_fires s > fires_before)

let test_counters () =
  let s = Scheduler.create (cfg ~n_cores:1 ()) in
  let x = R.plain 0 in
  Scheduler.exec s ~pid:0 (fun () ->
      R.write x 1;
      R.fence ();
      R.write x 2;
      R.fence ());
  Alcotest.(check bool) "steps counted" true (Scheduler.steps s >= 4);
  Alcotest.(check bool) "flushes counted" true (Scheduler.flush_count s ~pid:0 >= 2)

(* atomic loads cost more than plain ops (the pointer-chase model) *)
let test_atomic_load_cost () =
  let cost_of f =
    let s =
      Scheduler.create
        { (cfg ~n_cores:1 ()) with
          cost = { Scheduler.default_cost with jitter = 0; stall_prob = 0. } }
    in
    Scheduler.exec s ~pid:0 f;
    Scheduler.clock_of s ~pid:0
  in
  let a = R.atomic 0 in
  let p = R.plain 0 in
  let atomic_cost = cost_of (fun () -> for _ = 1 to 100 do ignore (R.get a) done) in
  let plain_cost = cost_of (fun () -> for _ = 1 to 100 do ignore (R.read p) done) in
  Alcotest.(check bool)
    (Printf.sprintf "atomic load (%d) dearer than plain read (%d)" atomic_cost plain_cost)
    true
    (atomic_cost > 2 * plain_cost)

(* Event-trace ring: records the configured window of events, oldest first. *)
let test_trace_ring () =
  let s =
    Scheduler.create
      { (cfg ~n_cores:1 ~rooster_interval:300 ()) with trace_capacity = 8 }
  in
  let x = R.plain 0 in
  let a = R.atomic 0 in
  Scheduler.exec s ~pid:0 (fun () ->
      R.write x 1;
      ignore (R.get a);
      ignore (R.cas a 0 1);
      R.fence ();
      R.charge 1_000);
  let events = Scheduler.recent_events s in
  Alcotest.(check bool) "bounded by capacity" true (List.length events <= 8);
  Alcotest.(check bool) "nonempty" true (events <> []);
  let kinds = List.map (fun (_, _, e) -> e) events in
  Alcotest.(check bool) "rooster fires recorded" true
    (List.exists (function Scheduler.Ev_rooster -> true | _ -> false) kinds);
  (* clocks are non-decreasing per process *)
  let rec monotone last = function
    | [] -> true
    | (_, clock, _) :: rest -> clock >= last && monotone clock rest
  in
  Alcotest.(check bool) "clock-ordered" true (monotone 0 events);
  (* disabled by default *)
  let s2 = Scheduler.create (cfg ~n_cores:1 ()) in
  Scheduler.exec s2 ~pid:0 (fun () -> R.write x 2);
  Alcotest.(check (list reject)) "disabled: empty" []
    (List.map (fun _ -> ()) (Scheduler.recent_events s2))

(* --- fault injection ----------------------------------------------------- *)

(* Stall_at freezes the victim's clock forward WITHOUT draining its store
   buffer (an in-core stall); other processes are unaffected. *)
let test_inject_stall () =
  let s = Scheduler.create (cfg ~n_cores:2 ()) in
  Scheduler.inject s [ Scheduler.Stall_at { pid = 1; at = 500; ticks = 100_000 } ];
  let x = R.plain 0 in
  let stale = ref (-1) in
  Scheduler.spawn s ~pid:1 (fun () ->
      R.write x 1;
      for _ = 1 to 40 do
        R.charge 50
      done);
  Scheduler.spawn s ~pid:0 (fun () ->
      while R.now () < 2_000 do
        R.charge 50
      done;
      stale := R.read x);
  Scheduler.run_all s;
  Alcotest.(check (list (pair int reject))) "no failures" [] (Scheduler.failures s);
  Alcotest.(check bool) "victim clock jumped past the stall" true
    (Scheduler.clock_of s ~pid:1 >= 100_500);
  Alcotest.(check bool) "other process unaffected" true
    (Scheduler.clock_of s ~pid:0 < 50_000);
  Alcotest.(check int) "stall did not drain the buffer" 0 !stale

(* Crash_at: the victim never runs again, but its final descheduling is a
   context switch, so its buffered stores become visible. *)
let test_inject_crash () =
  let s = Scheduler.create (cfg ~n_cores:2 ()) in
  Scheduler.inject s [ Scheduler.Crash_at { pid = 1; at = 500 } ];
  let x = R.plain 0 in
  let progress = ref 0 in
  Scheduler.spawn s ~pid:1 (fun () ->
      R.write x 7;
      for _ = 1 to 1_000 do
        R.charge 50;
        incr progress
      done);
  Scheduler.spawn s ~pid:0 (fun () -> R.charge 5_000);
  Scheduler.run_all s;
  Alcotest.(check int) "one crash fired" 1 (Scheduler.crashes s);
  Alcotest.(check bool) "victim crashed" true (Scheduler.crashed s ~pid:1);
  Alcotest.(check bool) "other process alive" false (Scheduler.crashed s ~pid:0);
  Alcotest.(check int) "buffer drained at crash" 7 (Cell.read_committed x);
  Alcotest.(check bool)
    (Printf.sprintf "victim stopped early (%d/1000 iterations)" !progress)
    true
    (!progress < 1_000)

(* Oversleep_spike pushes the next rooster wake-up far beyond T. *)
let test_oversleep_spike () =
  let s = Scheduler.create (cfg ~n_cores:1 ~rooster_interval:100 ()) in
  Scheduler.inject s [ Scheduler.Oversleep_spike { pid = 0; at = 0; extra = 10_000 } ];
  let x = R.plain 0 in
  Scheduler.exec s ~pid:0 (fun () ->
      R.write x 5;
      R.charge 500);
  Alcotest.(check int) "wake-up delayed past the run" 0 (Scheduler.rooster_fires s);
  Alcotest.(check int) "nothing flushed" 0 (Cell.read_committed x)

(* Skew_burst: [now] reads ahead inside the window, normal outside it. *)
let test_skew_burst () =
  let s = Scheduler.create (cfg ~n_cores:1 ()) in
  Scheduler.inject s
    [ Scheduler.Skew_burst { pid = 0; at = 100; until_ = 1_000; extra = 5_000 } ];
  let inside = ref 0 and after = ref 0 in
  Scheduler.exec s ~pid:0 (fun () ->
      R.charge 200;
      R.charge 10;
      (* a step after the burst began: the fault has fired *)
      inside := R.now ();
      R.charge 2_000;
      R.charge 10;
      after := R.now ());
  Alcotest.(check bool)
    (Printf.sprintf "now jumps ahead inside the burst (%d)" !inside)
    true (!inside >= 5_000);
  Alcotest.(check bool)
    (Printf.sprintf "skew gone after the burst (%d)" !after)
    true (!after < 5_000)

(* Faults re-arm on reset_clocks: a second filling sees the same stall. *)
let test_faults_rearm_on_reset () =
  let s = Scheduler.create (cfg ~n_cores:1 ()) in
  Scheduler.inject s [ Scheduler.Stall_at { pid = 0; at = 100; ticks = 50_000 } ];
  Scheduler.exec s ~pid:0 (fun () -> for _ = 1 to 10 do R.charge 50 done);
  Alcotest.(check bool) "first run stalled" true (Scheduler.clock_of s ~pid:0 >= 50_000);
  Scheduler.reset_clocks s;
  Alcotest.(check int) "clock reset" 0 (Scheduler.clock_of s ~pid:0);
  Scheduler.exec s ~pid:0 (fun () -> for _ = 1 to 10 do R.charge 50 done);
  Alcotest.(check bool) "stall fired again after reset" true
    (Scheduler.clock_of s ~pid:0 >= 50_000)

(* --- scheduling strategies ----------------------------------------------- *)

(* Targeted: the (skip+1)-th labelled hook on the victim stalls in place;
   hooks are counted per process either way. *)
let test_targeted_hook_stall () =
  let s =
    Scheduler.create
      { (cfg ~n_cores:2 ()) with
        strategy =
          Scheduler.Targeted
            { victim = 1;
              hook = Qs_intf.Runtime_intf.Hook_retire;
              skip = 2;
              stall = 50_000 } }
  in
  for pid = 0 to 1 do
    Scheduler.spawn s ~pid (fun () ->
        for _ = 1 to 5 do
          R.hook Qs_intf.Runtime_intf.Hook_retire;
          R.charge 50
        done)
  done;
  Scheduler.run_all s;
  Alcotest.(check int) "victim hooks counted" 5
    (Scheduler.hook_count s ~pid:1 Qs_intf.Runtime_intf.Hook_retire);
  Alcotest.(check int) "other hooks counted" 5
    (Scheduler.hook_count s ~pid:0 Qs_intf.Runtime_intf.Hook_retire);
  Alcotest.(check int) "unrelated hook untouched" 0
    (Scheduler.hook_count s ~pid:1 Qs_intf.Runtime_intf.Hook_scan);
  Alcotest.(check bool) "victim stalled at its third retire" true
    (Scheduler.clock_of s ~pid:1 >= 50_000);
  Alcotest.(check bool) "non-victim unaffected" true
    (Scheduler.clock_of s ~pid:0 < 10_000)

(* PCT is deterministic per (seed, strategy seed) and explores orderings the
   fair schedule cannot produce. *)
let pct_completion_order strategy =
  let s = Scheduler.create { (cfg ~n_cores:4 ~seed:2 ()) with strategy } in
  let out = ref [] in
  for pid = 0 to 3 do
    Scheduler.spawn s ~pid (fun () ->
        for _ = 1 to 50 do
          R.charge 10;
          R.yield ()
        done;
        out := pid :: !out)
  done;
  Scheduler.run_all s;
  List.rev !out

let test_pct_deterministic_and_differs () =
  let fair = pct_completion_order Scheduler.Fair in
  let pct = pct_completion_order (Scheduler.Pct { depth = 3; seed = 123 }) in
  let pct' = pct_completion_order (Scheduler.Pct { depth = 3; seed = 123 }) in
  Alcotest.(check (list int)) "pct deterministic" pct pct';
  Alcotest.(check bool) "pct explores a different ordering" true (pct <> fair);
  let pct2 = pct_completion_order (Scheduler.Pct { depth = 3; seed = 124 }) in
  Alcotest.(check bool) "different pct seeds explore differently" true
    (pct <> pct2 || fair <> pct2)

(* PCT soundness: descheduling a process is a context switch, so its
   buffered stores become visible without any fence (real hardware cannot
   keep a descheduled thread's stores hidden). *)
let test_pct_flushes_on_deschedule () =
  let s =
    Scheduler.create
      { (cfg ~n_cores:2 ()) with strategy = Scheduler.Pct { depth = 2; seed = 7 } }
  in
  let x = R.plain 0 in
  let seen = ref (-1) in
  Scheduler.spawn s ~pid:0 (fun () ->
      R.write x 1;
      for _ = 1 to 100 do
        R.charge 5;
        R.yield ()
      done);
  Scheduler.spawn s ~pid:1 (fun () ->
      (* no fence anywhere: only a context-switch flush can make x visible *)
      while R.read x = 0 do
        R.charge 5
      done;
      seen := R.read x);
  Scheduler.run_all s;
  Alcotest.(check (list (pair int reject))) "no failures" [] (Scheduler.failures s);
  Alcotest.(check int) "descheduling drained the buffer" 1 !seen

(* rooster_oversleep_min with rooster_oversleep = 0: a constant, non-random
   oversleep (used to push wake-ups beyond the epsilon an SMR scheme
   assumes, without perturbing the schedule's PRNG draws). *)
let test_oversleep_min_constant () =
  let run min_ =
    let s =
      Scheduler.create
        { (cfg ~n_cores:1 ~rooster_interval:100 ()) with
          rooster_oversleep_min = min_ }
    in
    let x = R.plain 0 in
    Scheduler.exec s ~pid:0 (fun () ->
        R.write x 5;
        R.charge 249);
    (Scheduler.rooster_fires s, Cell.read_committed x)
  in
  let fires0, x0 = run 0 in
  Alcotest.(check bool) "baseline wakes within T" true (fires0 > 0);
  Alcotest.(check int) "baseline flushed" 5 x0;
  let fires1, x1 = run 250 in
  Alcotest.(check int) "min oversleep delays every wake-up" 0 fires1;
  Alcotest.(check int) "nothing flushed under the oversleep" 0 x1

let suite =
  [ Alcotest.test_case "tso staleness until fence" `Quick test_tso_staleness;
    Alcotest.test_case "store-to-load forwarding" `Quick test_store_to_load_forwarding;
    Alcotest.test_case "atomic drains buffer" `Quick test_atomic_drains_buffer;
    Alcotest.test_case "capacity overflow commits oldest" `Quick test_capacity_overflow;
    Alcotest.test_case "rooster flushes buffer" `Quick test_rooster_flush;
    Alcotest.test_case "killed roosters stop flushing" `Quick test_kill_roosters;
    Alcotest.test_case "cas semantics" `Quick test_cas_semantics;
    Alcotest.test_case "fetch-and-add" `Quick test_faa;
    Alcotest.test_case "parallel virtual time" `Quick test_parallel_virtual_time;
    Alcotest.test_case "self and now" `Quick test_self_and_now;
    Alcotest.test_case "clock skew bounded" `Quick test_clock_skew_bounded;
    Alcotest.test_case "sleep_until delays" `Quick test_sleep_until;
    Alcotest.test_case "rooster flushes sleeping process" `Quick test_rooster_flushes_sleeper;
    Alcotest.test_case "worker failure recorded" `Quick test_failure_recorded;
    Alcotest.test_case "exec re-raises" `Quick test_exec_reraises;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "probabilistic drain" `Quick test_prob_drain;
    Alcotest.test_case "contention cost model" `Quick test_contention_cost;
    Alcotest.test_case "reset clocks" `Quick test_reset_clocks;
    Alcotest.test_case "step/flush counters" `Quick test_counters;
    Alcotest.test_case "atomic load cost model" `Quick test_atomic_load_cost;
    Alcotest.test_case "event trace ring" `Quick test_trace_ring;
    Alcotest.test_case "inject: stall freezes without draining" `Quick test_inject_stall;
    Alcotest.test_case "inject: crash stops and drains" `Quick test_inject_crash;
    Alcotest.test_case "inject: oversleep spike delays wake-up" `Quick test_oversleep_spike;
    Alcotest.test_case "inject: skew burst bends now" `Quick test_skew_burst;
    Alcotest.test_case "inject: faults re-arm on reset" `Quick test_faults_rearm_on_reset;
    Alcotest.test_case "targeted hook stall" `Quick test_targeted_hook_stall;
    Alcotest.test_case "pct deterministic, differs from fair" `Quick
      test_pct_deterministic_and_differs;
    Alcotest.test_case "pct flushes on deschedule" `Quick test_pct_flushes_on_deschedule;
    Alcotest.test_case "constant minimum oversleep" `Quick test_oversleep_min_constant
  ]
