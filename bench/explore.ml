(* Explorer CLI (see EXPERIMENTS.md, "Schedule exploration").

   Subcommands:

   - [smoke [--seeds N] [--repro-out PATH]] — the CI smoke budget: positive
     controls (the explorer must find the planted unsafety in the leaky and
     unsafe-hp baselines within N seeds), a clean sweep over hp / cadence /
     qsense (fair, PCT and fault-plan schedules; any failure is shrunk and
     saved to PATH), a churn sweep over the sound schemes (the [Churn]
     fault level: leave/rejoin + orphan adoption under a stall), and the
     QSense fallback round-trip with its QSBR differential. Exit 1 on any
     unexpected outcome.
   - [corpus PATH [--repro-out OUT]] — replay a committed corpus of
     known-clean cases; on failure, shrink and save a repro. Exit 1 if any
     case fails.
   - [replay PATH [--trace OUT]] — re-run the first case of a repro/corpus
     file and print the verdict (exit 1 if it is not Pass, so a repro file
     "fails again" visibly). This is the one-liner for reproducing a CI
     failure locally. With [--trace OUT], the replay runs with a trace sink
     installed and writes the Chrome trace-event timeline (Perfetto) of the
     run to OUT — trace emission is schedule-neutral, so the verdict is the
     same traced or not (see DESIGN.md §9), making this the way to look
     inside a failure.

   Everything is deterministic: equal case lines give equal verdicts. *)

open Qs_harness
module Scheme = Qs_smr.Scheme
module Scheduler = Qs_sim.Scheduler

let default_repro_out = "explorer_failure.repro"

let usage () =
  prerr_endline
    "usage: explore.exe smoke [--seeds N] [--repro-out PATH]\n\
    \       explore.exe corpus PATH [--repro-out OUT]\n\
    \       explore.exe replay PATH [--trace OUT]";
  exit 2

let rec parse_flags seeds repro_out = function
  | [] -> (seeds, repro_out)
  | "--seeds" :: n :: rest -> parse_flags (int_of_string n) repro_out rest
  | "--repro-out" :: p :: rest -> parse_flags seeds p rest
  | arg :: _ ->
    Printf.eprintf "unknown argument %S\n" arg;
    usage ()

let show_outcome (c : Explorer.case) (o : Explorer.outcome) =
  Printf.printf "  %-10s %-9s strat=%-8s faults=%-2d seed=%-6d -> %s\n%!"
    (Cset.kind_to_string c.ds)
    (Scheme.to_string c.scheme)
    (match c.strategy with
    | Fair -> "fair"
    | Pct { depth } -> Printf.sprintf "pct:%d" depth
    | Targeted _ -> "targeted")
    (List.length c.faults) c.seed
    (Explorer.verdict_to_string o.verdict)

(* Shrink a failing case and persist it; returns the file written. *)
let persist_failure ~repro_out (c : Explorer.case) (o : Explorer.outcome) =
  let small, spent = Explorer.shrink c o.verdict in
  let o' = Explorer.run_one small in
  Explorer.save_repro repro_out small o';
  Printf.printf "  shrunk in %d extra runs; repro saved to %s\n" spent repro_out;
  Printf.printf "  replay with: dune exec bench/explore.exe -- replay %s\n%!"
    repro_out

(* --- positive controls: the explorer must find planted bugs -------------- *)

let unsafe_hp_case seed =
  { (Explorer.default_case ~ds:Cset.List ~scheme:Scheme.Unsafe_hp ~seed) with
    Explorer.key_range = 8;
    ops_per_proc = 4_000;
    duration = 10_000_000 }

let leaky_case seed =
  { (Explorer.default_case ~ds:Cset.List ~scheme:Scheme.None_ ~seed) with
    Explorer.capacity = 256;
    ops_per_proc = 4_000;
    duration = 10_000_000 }

let positive_control ~name ~mk ~seeds =
  let cases = List.map mk (Explorer.seeds ~base:1 ~count:seeds) in
  let failures = Explorer.explore cases in
  List.iter (fun (c, o) -> show_outcome c o) failures;
  if failures = [] then begin
    Printf.printf "FAIL: %s yielded no violation within %d seeds\n%!" name seeds;
    false
  end
  else begin
    Printf.printf "ok: %s caught (%d/%d seeds)\n%!" name
      (List.length failures) seeds;
    true
  end

(* --- clean sweep: robust schemes must stay clean ------------------------- *)

let clean_cases ~seeds =
  List.concat_map
    (fun scheme ->
      List.concat_map
        (fun seed ->
          let dc = Explorer.default_case ~ds:Cset.List ~scheme ~seed in
          [ dc;
            { dc with Explorer.strategy = Pct { depth = 3 } };
            { dc with
              Explorer.faults =
                Explorer.plan Explorer.Stalls ~n:dc.n_processes
                  ~duration:dc.duration ~seed };
            { dc with
              Explorer.faults =
                Explorer.plan Explorer.Chaos ~n:dc.n_processes
                  ~duration:dc.duration ~seed } ])
        (Explorer.seeds ~base:11 ~count:seeds))
    [ Scheme.Hp; Scheme.Cadence; Scheme.Qsense ]

let clean_sweep ~seeds ~repro_out =
  let cases = clean_cases ~seeds in
  let failures = Explorer.explore cases in
  match failures with
  | [] ->
    Printf.printf "ok: %d clean-scheme cases pass\n%!" (List.length cases);
    true
  | (c, o) :: _ ->
    List.iter (fun (c, o) -> show_outcome c o) failures;
    Printf.printf "FAIL: %d/%d clean-scheme cases failed\n%!"
      (List.length failures) (List.length cases);
    persist_failure ~repro_out c o;
    false

(* --- churn sweep: dynamic membership must stay safe ---------------------- *)

(* Every sound scheme under the [Churn] fault level: two processes leave
   and rejoin mid-run (donating their limbo lists to the orphan pool) while
   a third stalls. The failure class being hunted is the adopted-node UAF —
   an adopter freeing an orphan a still-running (evicted or stalled)
   process protects. *)
let churn_cases ~seeds =
  List.concat_map
    (fun scheme ->
      List.map
        (fun seed ->
          let dc = Explorer.default_case ~ds:Cset.List ~scheme ~seed in
          { dc with
            Explorer.faults =
              Explorer.plan Explorer.Churn ~n:dc.n_processes
                ~duration:dc.duration ~seed })
        (Explorer.seeds ~base:29 ~count:seeds))
    [ Scheme.Qsbr; Scheme.Ebr; Scheme.Hp; Scheme.Cadence; Scheme.Qsense ]

let churn_sweep ~seeds ~repro_out =
  let cases = churn_cases ~seeds in
  let failures = Explorer.explore cases in
  match failures with
  | [] ->
    Printf.printf "ok: %d churn cases pass (leave/rejoin + orphan adoption)\n%!"
      (List.length cases);
    true
  | (c, o) :: _ ->
    List.iter (fun (c, o) -> show_outcome c o) failures;
    Printf.printf "FAIL: %d/%d churn cases failed\n%!"
      (List.length failures) (List.length cases);
    persist_failure ~repro_out c o;
    false

(* --- QSense fallback round-trip under an injected stall ------------------ *)

let stall_case ~scheme =
  { (Explorer.default_case ~ds:Cset.List ~scheme ~seed:5) with
    Explorer.ops_per_proc = 4_000;
    duration = 2_500_000;
    capacity = 300;
    faults = [ Scheduler.Stall_at { pid = 3; at = 100_000; ticks = 1_500_000 } ] }

let fallback_round_trip () =
  let o = Explorer.run_one (stall_case ~scheme:Scheme.Qsense) in
  let o' = Explorer.run_one (stall_case ~scheme:Scheme.Qsbr) in
  let qsense_ok =
    o.verdict = Explorer.Pass
    && o.stats.fallback_entries >= 1
    && o.stats.fallback_exits >= 1
    && o.stats.fallback_ticks > 0
  in
  let qsbr_ok = match o'.verdict with Explorer.Oom _ -> true | _ -> false in
  Printf.printf
    "%s: qsense under stall: %s (fallback entries=%d exits=%d ticks=%d); \
     qsbr differential: %s\n%!"
    (if qsense_ok && qsbr_ok then "ok" else "FAIL")
    (Explorer.verdict_to_string o.verdict)
    o.stats.fallback_entries o.stats.fallback_exits o.stats.fallback_ticks
    (Explorer.verdict_to_string o'.verdict);
  qsense_ok && qsbr_ok

(* --- subcommands --------------------------------------------------------- *)

let smoke args =
  let seeds, repro_out = parse_flags 3 default_repro_out args in
  Printf.printf "== explorer smoke (seed budget %d) ==\n%!" seeds;
  let ok_unsafe =
    positive_control ~name:"unsafe-hp" ~mk:unsafe_hp_case ~seeds
  in
  let ok_leaky = positive_control ~name:"leaky" ~mk:leaky_case ~seeds in
  let ok_clean = clean_sweep ~seeds ~repro_out in
  let ok_churn = churn_sweep ~seeds ~repro_out in
  let ok_fb = fallback_round_trip () in
  if ok_unsafe && ok_leaky && ok_clean && ok_churn && ok_fb then begin
    print_endline "explorer smoke: all checks passed";
    0
  end
  else 1

let corpus path args =
  let _, repro_out = parse_flags 0 default_repro_out args in
  let cases = Explorer.load_corpus path in
  Printf.printf "== corpus replay: %d cases from %s ==\n%!"
    (List.length cases) path;
  match Explorer.explore cases with
  | [] ->
    print_endline "corpus clean";
    0
  | (c, o) :: _ as failures ->
    List.iter (fun (c, o) -> show_outcome c o) failures;
    persist_failure ~repro_out c o;
    1

let replay path args =
  let trace_out =
    match args with
    | [] -> None
    | [ "--trace"; out ] -> Some out
    | _ -> usage ()
  in
  let c = Explorer.load_repro path in
  let o =
    match trace_out with
    | None -> Explorer.run_one c
    | Some out ->
      let tracer =
        Qs_obs.Tracer.create ~n_processes:c.Explorer.n_processes
          ~capacity:(1 lsl 16) ()
      in
      let o = Explorer.run_one ~sink:(Qs_obs.Tracer.sink tracer) c in
      Qs_obs.Export.save_chrome tracer out;
      Printf.printf
        "  trace: %d events (%d dropped) -> %s (load in ui.perfetto.dev)\n%!"
        (Qs_obs.Tracer.total tracer)
        (Qs_obs.Tracer.total_dropped tracer)
        out;
      o
  in
  show_outcome c o;
  match o.verdict with Explorer.Pass -> 0 | _ -> 1

let () =
  match Array.to_list Sys.argv with
  | _ :: "smoke" :: args -> exit (smoke args)
  | _ :: "corpus" :: path :: args -> exit (corpus path args)
  | _ :: "replay" :: path :: args -> exit (replay path args)
  | _ -> usage ()
