(* Explorer CLI (see EXPERIMENTS.md, "Schedule exploration" and
   "Exploration at scale").

   Subcommands:

   - [smoke [--seeds N] [--jobs N] [--repro-out PATH]] — the CI smoke
     budget: positive controls (the explorer must find the planted unsafety
     in the leaky and unsafe-hp baselines within N seeds), a clean sweep
     over hp / cadence / qsense and the rival schemes debra-plus / hyaline
     (fair, PCT, fault-plan and [Neutralize] schedules; any failure is
     shrunk and saved to PATH), a churn sweep over the sound schemes
     (the [Churn] fault level: leave/rejoin + orphan adoption under
     a stall), and the QSense fallback round-trip with its QSBR
     differential. Sweeps run through the worker-domain pool ([--jobs],
     default cores-1); shrinking stays on the coordinator. Exit 1 on any
     unexpected outcome.
   - [corpus PATH [--jobs N] [--repro-out OUT]] — replay a committed corpus
     of known-clean cases through the pool; on failure, shrink and save a
     repro. Exit 1 if any case fails.
   - [replay PATH [--trace OUT]] — re-run the first case of a repro/corpus
     file and print the verdict (exit 1 if it is not Pass, so a repro file
     "fails again" visibly). This is the one-liner for reproducing a CI
     failure locally. With [--trace OUT], the replay runs with a trace sink
     installed and writes the Chrome trace-event timeline (Perfetto) of the
     run to OUT — trace emission is schedule-neutral, so the verdict is the
     same traced or not (see DESIGN.md §9), making this the way to look
     inside a failure.
   - [profile [--jobs N] [--repeat N] [--out PATH]] — the sim-core
     micro-bench: effects/sec and schedules/sec on a representative case
     mix, solo and through the pool, plus minor-allocation words per
     scheduler step; merges an "explorer" section into PATH
     (out/BENCH_RESULTS.json, schema 9) when it exists.
   - [grow OUT [--target N] [--jobs N] [--budget N] [--base PATH]] —
     coverage-guided corpus growth: breed [--target] known-clean cases from
     a deterministic frontier (plus [--base] corpus, if given), keeping
     witnesses for every rare event class (fallback entry, eviction-seize,
     unregister, adoption, bag sealing, neutralization); writes the corpus
     to OUT. Exit 1
     if a rare class ends up with no witness.
   - [coverage PATH [--jobs N]] — replay a corpus with the counting sink
     and report how many cases witness each rare event class; exit 1 if
     any class has no witness (the corpus contract grow enforces at build
     time, re-checked here independently — CI runs it on the committed
     file).

   Everything is deterministic: equal case lines give equal verdicts, solo
   or pooled, whatever the job count. *)

open Qs_harness
module Scheme = Qs_smr.Scheme
module Scheduler = Qs_sim.Scheduler

(* Default outputs land in the gitignored [out/] directory (created on
   first write) rather than the repo root; explicit [--repro-out]/[--out]
   /[--trace] paths are used as given. *)
let ensure_parent path =
  let dir = Filename.dirname path in
  if dir <> "." && dir <> "/" && not (Sys.file_exists dir) then
    Sys.mkdir dir 0o755

let default_repro_out = Filename.concat "out" "explorer_failure.repro"

let usage () =
  prerr_endline
    "usage: explore.exe smoke [--seeds N] [--jobs N] [--repro-out PATH]\n\
    \       explore.exe corpus PATH [--jobs N] [--repro-out OUT]\n\
    \       explore.exe replay PATH [--trace OUT]\n\
    \       explore.exe profile [--jobs N] [--repeat N] [--out PATH]\n\
    \       explore.exe grow OUT [--target N] [--jobs N] [--budget N] [--base PATH]\n\
    \       explore.exe coverage PATH [--jobs N]";
  exit 2

(* Flag values are validated here: a typo'd [--seeds x2] or [--jobs 0] gets
   the usage message, not an [int_of_string] exception. *)
let pos_int ~flag v =
  match int_of_string_opt v with
  | Some n when n > 0 -> n
  | _ ->
    Printf.eprintf "explore.exe: %s expects a positive integer, got %S\n" flag v;
    usage ()

type flags = {
  seeds : int;
  jobs : int;
  repro_out : string;
  target : int;
  budget : int;
  repeat : int;
  out : string option;
  base : string option;
}

let default_flags =
  { seeds = 3;
    jobs = Explorer_pool.default_jobs ();
    repro_out = default_repro_out;
    target = 64;
    budget = 1_500;
    repeat = 6;
    out = None;
    base = None }

let rec parse_flags acc = function
  | [] -> acc
  | "--seeds" :: v :: rest -> parse_flags { acc with seeds = pos_int ~flag:"--seeds" v } rest
  | "--jobs" :: v :: rest -> parse_flags { acc with jobs = pos_int ~flag:"--jobs" v } rest
  | "--repro-out" :: p :: rest -> parse_flags { acc with repro_out = p } rest
  | "--target" :: v :: rest ->
    parse_flags { acc with target = pos_int ~flag:"--target" v } rest
  | "--budget" :: v :: rest ->
    parse_flags { acc with budget = pos_int ~flag:"--budget" v } rest
  | "--repeat" :: v :: rest ->
    parse_flags { acc with repeat = pos_int ~flag:"--repeat" v } rest
  | "--out" :: p :: rest -> parse_flags { acc with out = Some p } rest
  | "--base" :: p :: rest -> parse_flags { acc with base = Some p } rest
  | [ flag ]
    when List.mem flag
           [ "--seeds"; "--jobs"; "--repro-out"; "--target"; "--budget"; "--repeat";
             "--out"; "--base" ] ->
    Printf.eprintf "explore.exe: %s expects a value\n" flag;
    usage ()
  | arg :: _ ->
    Printf.eprintf "unknown argument %S\n" arg;
    usage ()

let parse args = parse_flags default_flags args

let show_outcome (c : Explorer.case) (o : Explorer.outcome) =
  Printf.printf "  %-10s %-9s strat=%-8s faults=%-2d seed=%-6d -> %s\n%!"
    (Cset.kind_to_string c.ds)
    (Scheme.to_string c.scheme)
    (match c.strategy with
    | Fair -> "fair"
    | Pct { depth } -> Printf.sprintf "pct:%d" depth
    | Targeted _ -> "targeted")
    (List.length c.faults) c.seed
    (Explorer.verdict_to_string o.verdict)

(* Shrink a failing case and persist it; shrinking re-runs candidate cases
   solo on the coordinator (outcomes are identical either way). *)
let persist_failure ~repro_out (c : Explorer.case) (o : Explorer.outcome) =
  let small, spent = Explorer.shrink c o.verdict in
  let o' = Explorer.run_one small in
  ensure_parent repro_out;
  Explorer.save_repro repro_out small o';
  Printf.printf "  shrunk in %d extra runs; repro saved to %s\n" spent repro_out;
  Printf.printf "  replay with: dune exec bench/explore.exe -- replay %s\n%!"
    repro_out

(* --- positive controls: the explorer must find planted bugs -------------- *)

let unsafe_hp_case seed =
  { (Explorer.default_case ~ds:Cset.List ~scheme:Scheme.Unsafe_hp ~seed) with
    Explorer.key_range = 8;
    ops_per_proc = 4_000;
    duration = 10_000_000 }

let leaky_case seed =
  { (Explorer.default_case ~ds:Cset.List ~scheme:Scheme.None_ ~seed) with
    Explorer.capacity = 256;
    ops_per_proc = 4_000;
    duration = 10_000_000 }

let positive_control ~name ~mk ~seeds ~jobs =
  let cases = List.map mk (Explorer.seeds ~base:1 ~count:seeds) in
  let failures = Explorer_pool.explore ~jobs cases in
  List.iter (fun (c, o) -> show_outcome c o) failures;
  if failures = [] then begin
    Printf.printf "FAIL: %s yielded no violation within %d seeds\n%!" name seeds;
    false
  end
  else begin
    Printf.printf "ok: %s caught (%d/%d seeds)\n%!" name
      (List.length failures) seeds;
    true
  end

(* --- clean sweep: robust schemes must stay clean ------------------------- *)

let clean_cases ~seeds =
  List.concat_map
    (fun scheme ->
      List.concat_map
        (fun seed ->
          let dc = Explorer.default_case ~ds:Cset.List ~scheme ~seed in
          [ dc;
            { dc with Explorer.strategy = Pct { depth = 3 } };
            { dc with
              Explorer.faults =
                Explorer.plan Explorer.Stalls ~n:dc.n_processes
                  ~duration:dc.duration ~seed };
            { dc with
              Explorer.faults =
                Explorer.plan Explorer.Chaos ~n:dc.n_processes
                  ~duration:dc.duration ~seed };
            (* poison deliveries discontinue whatever operation is in
               flight — under every scheme, not just DEBRA+: the unwind
               handlers in the structures must hold across the zoo *)
            { dc with
              Explorer.faults =
                Explorer.plan Explorer.Neutralize ~n:dc.n_processes
                  ~duration:dc.duration ~seed } ])
        (Explorer.seeds ~base:11 ~count:seeds))
    [ Scheme.Hp; Scheme.Cadence; Scheme.Qsense; Scheme.Debra_plus;
      Scheme.Hyaline ]

let clean_sweep ~seeds ~jobs ~repro_out =
  let cases = clean_cases ~seeds in
  let failures = Explorer_pool.explore ~jobs cases in
  match failures with
  | [] ->
    Printf.printf "ok: %d clean-scheme cases pass\n%!" (List.length cases);
    true
  | (c, o) :: _ ->
    List.iter (fun (c, o) -> show_outcome c o) failures;
    Printf.printf "FAIL: %d/%d clean-scheme cases failed\n%!"
      (List.length failures) (List.length cases);
    persist_failure ~repro_out c o;
    false

(* --- churn sweep: dynamic membership must stay safe ---------------------- *)

(* Every sound scheme under the [Churn] fault level: two processes leave
   and rejoin mid-run (donating their limbo lists to the orphan pool) while
   a third stalls. The failure class being hunted is the adopted-node UAF —
   an adopter freeing an orphan a still-running (evicted or stalled)
   process protects. *)
let churn_cases ~seeds =
  List.concat_map
    (fun scheme ->
      List.map
        (fun seed ->
          let dc = Explorer.default_case ~ds:Cset.List ~scheme ~seed in
          { dc with
            Explorer.faults =
              Explorer.plan Explorer.Churn ~n:dc.n_processes
                ~duration:dc.duration ~seed })
        (Explorer.seeds ~base:29 ~count:seeds))
    [ Scheme.Qsbr; Scheme.Ebr; Scheme.Hp; Scheme.Cadence; Scheme.Qsense;
      Scheme.Debra_plus; Scheme.Hyaline ]

let churn_sweep ~seeds ~jobs ~repro_out =
  let cases = churn_cases ~seeds in
  let failures = Explorer_pool.explore ~jobs cases in
  match failures with
  | [] ->
    Printf.printf "ok: %d churn cases pass (leave/rejoin + orphan adoption)\n%!"
      (List.length cases);
    true
  | (c, o) :: _ ->
    List.iter (fun (c, o) -> show_outcome c o) failures;
    Printf.printf "FAIL: %d/%d churn cases failed\n%!"
      (List.length failures) (List.length cases);
    persist_failure ~repro_out c o;
    false

(* --- QSense fallback round-trip under an injected stall ------------------ *)

let stall_case ~scheme =
  { (Explorer.default_case ~ds:Cset.List ~scheme ~seed:5) with
    Explorer.ops_per_proc = 4_000;
    duration = 2_500_000;
    capacity = 300;
    faults = [ Scheduler.Stall_at { pid = 3; at = 100_000; ticks = 1_500_000 } ] }

let fallback_round_trip () =
  let o = Explorer.run_one (stall_case ~scheme:Scheme.Qsense) in
  let o' = Explorer.run_one (stall_case ~scheme:Scheme.Qsbr) in
  let qsense_ok =
    o.verdict = Explorer.Pass
    && o.stats.fallback_entries >= 1
    && o.stats.fallback_exits >= 1
    && o.stats.fallback_ticks > 0
  in
  let qsbr_ok = match o'.verdict with Explorer.Oom _ -> true | _ -> false in
  Printf.printf
    "%s: qsense under stall: %s (fallback entries=%d exits=%d ticks=%d); \
     qsbr differential: %s\n%!"
    (if qsense_ok && qsbr_ok then "ok" else "FAIL")
    (Explorer.verdict_to_string o.verdict)
    o.stats.fallback_entries o.stats.fallback_exits o.stats.fallback_ticks
    (Explorer.verdict_to_string o'.verdict);
  qsense_ok && qsbr_ok

(* --- subcommands --------------------------------------------------------- *)

let smoke args =
  let f = parse args in
  Printf.printf "== explorer smoke (seed budget %d, %d jobs) ==\n%!" f.seeds f.jobs;
  let ok_unsafe =
    positive_control ~name:"unsafe-hp" ~mk:unsafe_hp_case ~seeds:f.seeds ~jobs:f.jobs
  in
  let ok_leaky =
    positive_control ~name:"leaky" ~mk:leaky_case ~seeds:f.seeds ~jobs:f.jobs
  in
  let ok_clean = clean_sweep ~seeds:f.seeds ~jobs:f.jobs ~repro_out:f.repro_out in
  let ok_churn = churn_sweep ~seeds:f.seeds ~jobs:f.jobs ~repro_out:f.repro_out in
  let ok_fb = fallback_round_trip () in
  if ok_unsafe && ok_leaky && ok_clean && ok_churn && ok_fb then begin
    print_endline "explorer smoke: all checks passed";
    0
  end
  else 1

let corpus path args =
  let f = parse args in
  let cases = Explorer.load_corpus path in
  Printf.printf "== corpus replay: %d cases from %s (%d jobs) ==\n%!"
    (List.length cases) path f.jobs;
  match Explorer_pool.explore ~jobs:f.jobs cases with
  | [] ->
    print_endline "corpus clean";
    0
  | (c, o) :: _ as failures ->
    List.iter (fun (c, o) -> show_outcome c o) failures;
    persist_failure ~repro_out:f.repro_out c o;
    1

let replay path args =
  let trace_out =
    match args with
    | [] -> None
    | [ "--trace"; out ] -> Some out
    | _ -> usage ()
  in
  let c = Explorer.load_repro path in
  let o =
    match trace_out with
    | None -> Explorer.run_one c
    | Some out ->
      let tracer =
        Qs_obs.Tracer.create ~n_processes:c.Explorer.n_processes
          ~capacity:(1 lsl 16) ()
      in
      let o = Explorer.run_one ~sink:(Qs_obs.Tracer.sink tracer) c in
      ensure_parent out;
      Qs_obs.Export.save_chrome tracer out;
      Printf.printf
        "  trace: %d events (%d dropped) -> %s (load in ui.perfetto.dev)\n%!"
        (Qs_obs.Tracer.total tracer)
        (Qs_obs.Tracer.total_dropped tracer)
        out;
      o
  in
  show_outcome c o;
  match o.verdict with Explorer.Pass -> 0 | _ -> 1

(* --- profile: the sim-core micro-bench ----------------------------------- *)

(* Representative case mix: fair, PCT and fault-plan schedules across the
   three hazard-scanning schemes — the workloads corpus replay and smoke
   sweeps are made of. Fixed, so numbers are comparable run to run. *)
let profile_batch () =
  clean_cases ~seeds:2 @ churn_cases ~seeds:1

let wall_s () = float_of_int (Qs_real.Real_runtime.now ()) /. 1e9

(* Raw dispatch cost: four fibers spinning plain reads/writes on private
   cells — no data structure, no oracle, no history. Isolates the
   scheduler's per-effect overhead (perform, handler dispatch, accounting,
   pick) from everything the explorer builds on top.

   Two cost models. [`Ties] charges every process identically, so clocks
   march in lockstep and (almost) every pick is a tie: the owned-schedule
   fast path never applies and the number is the pure suspension-path
   cost. [`Corpus] uses the stall model the explorer's cases run under
   (stall_prob 0.05, stall_max 600, as in [Explorer.run_one]), whose
   stalls open the clock gaps that real schedules have — the blended cost
   of inline and suspended dispatch at a representative mix. *)
let raw_dispatch_ns model =
  let open Qs_sim in
  let cfg = Scheduler.default_config ~n_cores:4 ~seed:1 in
  let cfg =
    match model with
    | `Ties -> cfg
    | `Corpus ->
      { cfg with
        Scheduler.cost =
          { Scheduler.default_cost with stall_prob = 0.05; stall_max = 600 } }
  in
  let sched = Scheduler.create cfg in
  (* Disjoint per-process cell rings: writes spread over cells, as data
     structure operations do, so store-buffer commits stay O(1). *)
  let cells = Array.init 4 (fun _ -> Array.init 64 (fun _ -> Cell.make 0)) in
  let iters = 75_000 in
  for pid = 0 to 3 do
    Scheduler.spawn sched ~pid (fun () ->
        let ring = cells.(pid) in
        for i = 1 to iters do
          let c = ring.(i land 63) in
          ignore (Scheduler.op_read c : int);
          ignore (Scheduler.op_read c : int);
          ignore (Scheduler.op_read c : int);
          Scheduler.op_write c i
        done)
  done;
  let t0 = wall_s () in
  Scheduler.run_all sched;
  let dt = wall_s () -. t0 in
  dt *. 1e9 /. float_of_int (Scheduler.steps sched)

(* Inline dispatch cost: the same op mix on a single fiber, which is
   strictly clock-minimal throughout — every operation takes the
   owned-schedule fast path. The gap between this and [raw_dispatch_ns]
   is the price of a genuine suspension. *)
let inline_dispatch_ns () =
  let open Qs_sim in
  let sched = Scheduler.create (Scheduler.default_config ~n_cores:1 ~seed:1) in
  let ring = Array.init 64 (fun _ -> Cell.make 0) in
  let iters = 300_000 in
  Scheduler.spawn sched ~pid:0 (fun () ->
      for i = 1 to iters do
        let c = ring.(i land 63) in
        ignore (Scheduler.op_read c : int);
        ignore (Scheduler.op_read c : int);
        ignore (Scheduler.op_read c : int);
        Scheduler.op_write c i
      done);
  let t0 = wall_s () in
  Scheduler.run_all sched;
  let dt = wall_s () -. t0 in
  dt *. 1e9 /. float_of_int (Scheduler.steps sched)

let profile args =
  let f = parse args in
  let batch = profile_batch () in
  let n_batch = List.length batch in
  (* Per-step minor allocation on the scheduler fast path: one solo run of
     a plain fair case, no sink, no trace ring. The CI pin on this number
     is what keeps the dispatch/allocation work from regressing. *)
  let alloc_case = Explorer.default_case ~ds:Cset.List ~scheme:Scheme.Hp ~seed:11 in
  ignore (Explorer.run_one alloc_case);
  let w0 = Gc.minor_words () in
  let o_alloc = Explorer.run_one alloc_case in
  let step_alloc_words = (Gc.minor_words () -. w0) /. float_of_int o_alloc.steps in
  (* Solo: schedules/sec and effects/sec (a scheduler step dispatches one
     suspended effect; sleep quanta are counted too, as they were in the
     step counter all along). *)
  let t0 = wall_s () in
  let steps = ref 0 in
  for _ = 1 to f.repeat do
    List.iter (fun c -> steps := !steps + (Explorer.run_one c).Explorer.steps) batch
  done;
  let solo_dt = wall_s () -. t0 in
  let runs = f.repeat * n_batch in
  let solo_sched = float_of_int runs /. solo_dt in
  let effects = float_of_int !steps /. solo_dt in
  (* Pooled: same batch, same repeat count, through the worker domains. *)
  let t1 = wall_s () in
  for _ = 1 to f.repeat do
    ignore (Explorer_pool.outcomes ~jobs:f.jobs batch)
  done;
  let pooled_dt = wall_s () -. t1 in
  let pooled_sched = float_of_int runs /. pooled_dt in
  let speedup = pooled_sched /. solo_sched in
  let cores = Domain.recommended_domain_count () in
  let dispatch_ns = raw_dispatch_ns `Ties in
  let dispatch_corpus_ns = raw_dispatch_ns `Corpus in
  let inline_ns = inline_dispatch_ns () in
  Printf.printf
    "== sim-core profile (%d cases x %d, %d jobs, %d cores) ==\n\
     solo:   %8.1f schedules/sec  %10.0f effects/sec\n\
     pooled: %8.1f schedules/sec  (speedup %.2fx)\n\
     dispatch ns/effect: %.1f suspended (all-ties)  %.1f corpus cost model  \
     %.1f inline\n\
     step allocation: %.1f minor words/step\n%!"
    n_batch f.repeat f.jobs cores solo_sched effects pooled_sched speedup
    dispatch_ns dispatch_corpus_ns inline_ns step_alloc_words;
  (match f.out with
  | None -> ()
  | Some path when Sys.file_exists path ->
    let doc = Qs_util.Json.parse_exn (In_channel.with_open_text path In_channel.input_all) in
    let num x = Qs_util.Json.Num x in
    let section =
      Qs_util.Json.Obj
        [ ("cases", num (float_of_int n_batch));
          ("repeat", num (float_of_int f.repeat));
          ("jobs", num (float_of_int f.jobs));
          ("cores", num (float_of_int cores));
          ("effects_per_sec", num (Float.round effects));
          ("schedules_per_sec_solo", num solo_sched);
          ("schedules_per_sec_pooled", num pooled_sched);
          ("pool_speedup", num speedup);
          ("dispatch_ns_per_effect", num dispatch_ns);
          ("dispatch_ns_corpus_cost", num dispatch_corpus_ns);
          ("dispatch_ns_inline", num inline_ns);
          ("step_alloc_words", num step_alloc_words) ]
    in
    let doc = Qs_util.Json.set_member "explorer" section doc in
    let doc = Qs_util.Json.set_member "schema" (num 9.) doc in
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (Qs_util.Json.to_string doc));
    Printf.printf "explorer section merged into %s\n%!" path
  | Some path ->
    Printf.eprintf "explore.exe: --out %s: no such file (run bench first)\n" path;
    exit 1);
  0

(* --- grow: coverage-guided corpus growth --------------------------------- *)

(* The deterministic base frontier: breadth across scheme x structure x
   strategy x fault level, plus the shapes known to reach the rare event
   classes (QSense under a long stall for fallback entry and eviction,
   churn plans for unregister/adoption, small bag capacities for sealing,
   [Neutralize] plans for poison delivery). The rival-scheme shapes lead
   the frontier so a regrow anchored on an existing corpus ([--base])
   admits them before the size target fills up on breadth alone. *)
let grow_base () =
  let rival_shapes =
    let neutralized ~ds ~scheme ~seed =
      let dc = Explorer.default_case ~ds ~scheme ~seed in
      { dc with
        Explorer.faults =
          Explorer.plan Explorer.Neutralize ~n:dc.n_processes
            ~duration:dc.duration ~seed }
    in
    let churned ~ds ~scheme ~seed ~bags =
      let dc = Explorer.default_case ~ds ~scheme ~seed in
      { dc with
        Explorer.bags;
        faults =
          Explorer.plan Explorer.Churn ~n:dc.n_processes ~duration:dc.duration
            ~seed }
    in
    [ (* injected poison deliveries: the neutralize witnesses — both at
         the scheme that restarts (DEBRA+) and at an incumbent, where the
         delivery exercises only the unwind handlers *)
      neutralized ~ds:Cset.List ~scheme:Scheme.Debra_plus ~seed:41;
      neutralized ~ds:Cset.Bst ~scheme:Scheme.Debra_plus ~seed:42;
      neutralized ~ds:Cset.List ~scheme:Scheme.Qsense ~seed:41;
      (* Hyaline under membership churn: unregister donates the open
         batch, small blocks so sealing fires within the op budget *)
      churned ~ds:Cset.List ~scheme:Scheme.Hyaline ~seed:43 ~bags:4;
      churned ~ds:Cset.Hashtable ~scheme:Scheme.Debra_plus ~seed:44 ~bags:4;
      (* plain breadth for both rivals *)
      Explorer.default_case ~ds:Cset.List ~scheme:Scheme.Hyaline ~seed:45;
      { (Explorer.default_case ~ds:Cset.Bst ~scheme:Scheme.Hyaline ~seed:46) with
        Explorer.strategy = Pct { depth = 3 } };
      { (Explorer.default_case ~ds:Cset.Skiplist ~scheme:Scheme.Debra_plus
           ~seed:47) with
        Explorer.bags = 1 } ]
  in
  let sound =
    [ Scheme.Qsbr; Scheme.Ebr; Scheme.Hp; Scheme.Cadence; Scheme.Qsense;
      Scheme.Debra_plus; Scheme.Hyaline ]
  in
  let breadth =
    List.concat_map
      (fun scheme ->
        List.concat_map
          (fun ds ->
            List.map
              (fun seed -> Explorer.default_case ~ds ~scheme ~seed)
              (Explorer.seeds ~base:11 ~count:2))
          [ Cset.List; Cset.Skiplist; Cset.Bst; Cset.Hashtable ])
      sound
  in
  let strategies =
    List.map
      (fun scheme ->
        { (Explorer.default_case ~ds:Cset.List ~scheme ~seed:11) with
          Explorer.strategy = Pct { depth = 3 } })
      sound
  in
  let faults =
    List.concat_map
      (fun scheme ->
        List.concat_map
          (fun level ->
            List.map
              (fun seed ->
                let dc = Explorer.default_case ~ds:Cset.List ~scheme ~seed in
                { dc with
                  Explorer.faults =
                    Explorer.plan level ~n:dc.n_processes ~duration:dc.duration
                      ~seed })
              (Explorer.seeds ~base:11 ~count:2))
          [ Explorer.Stalls; Explorer.Chaos; Explorer.Churn; Explorer.Victim_stall ])
      [ Scheme.Hp; Scheme.Cadence; Scheme.Qsense ]
  in
  let churn_all =
    List.map
      (fun scheme ->
        let dc = Explorer.default_case ~ds:Cset.Hashtable ~scheme ~seed:29 in
        { dc with
          Explorer.faults =
            Explorer.plan Explorer.Churn ~n:dc.n_processes ~duration:dc.duration
              ~seed:29 })
      [ Scheme.Qsbr; Scheme.Ebr ]
  in
  let fallback =
    (* the known fallback/eviction shapes: one process out cold while the
       others run against a bounded arena; the [evict] variant arms the
       §5.2 eviction timeout so the stalled victim's epoch is seized
       mid-fallback (without it Ev_evict is unreachable — eviction is off
       by default) *)
    [ stall_case ~scheme:Scheme.Qsense;
      { (stall_case ~scheme:Scheme.Qsense) with Explorer.seed = 6 };
      { (stall_case ~scheme:Scheme.Qsense) with Explorer.evict = 200_000 } ]
  in
  let bags =
    List.concat_map
      (fun scheme ->
        let dc = Explorer.default_case ~ds:Cset.List ~scheme ~seed:205 in
        let churned =
          { dc with
            Explorer.faults =
              Explorer.plan Explorer.Churn ~n:dc.n_processes ~duration:dc.duration
                ~seed:205 }
        in
        [ { churned with Explorer.bags = 1 };
          { churned with Explorer.bags = 4 };
          { churned with Explorer.bags = 0 } ])
      [ Scheme.Qsense; Scheme.Cadence; Scheme.Qsbr ]
  in
  rival_shapes @ breadth @ strategies @ faults @ churn_all @ fallback @ bags

let grow out args =
  let f = parse args in
  let base =
    (match f.base with None -> [] | Some path -> Explorer.load_corpus path)
    @ grow_base ()
  in
  Printf.printf "== coverage-guided growth: target %d from %d base cases (%d jobs) ==\n%!"
    f.target (List.length base) f.jobs;
  let g = Coverage.grow ~jobs:f.jobs ~budget:f.budget ~target:f.target base in
  let cases = List.map fst g.selected in
  ensure_parent out;
  let oc = open_out out in
  Printf.fprintf oc
    "# explorer seed corpus — replayed as a regression test\n\
     # grown by: dune exec bench/explore.exe -- grow %s --target %d\n\
     # coverage (cases reaching each rare event class):\n"
    out f.target;
  List.iter
    (fun (name, i) ->
      Printf.fprintf oc "#   %-15s %d\n" name g.class_counts.(i))
    Coverage.rare_classes;
  List.iter (fun c -> Printf.fprintf oc "%s\n" (Explorer.to_string c)) cases;
  close_out oc;
  Printf.printf "selected %d cases in %d runs -> %s\n" (List.length cases) g.runs out;
  let missing =
    List.filter (fun (_, i) -> g.class_counts.(i) = 0) Coverage.rare_classes
  in
  List.iter
    (fun (name, i) ->
      Printf.printf "  %-15s %4d cases%s\n" name g.class_counts.(i)
        (if g.class_counts.(i) = 0 then "  <-- NO WITNESS" else ""))
    Coverage.rare_classes;
  if missing = [] && List.length cases >= f.target then begin
    print_endline "all rare event classes witnessed";
    0
  end
  else 1

(* --- coverage: rare-class witness counts of an existing corpus ----------- *)

let coverage path args =
  let f = parse args in
  let cases = Explorer.load_corpus path in
  Printf.printf "== corpus coverage: %d cases from %s (%d jobs) ==\n%!"
    (List.length cases) path f.jobs;
  let results =
    Explorer_pool.map ~jobs:f.jobs Coverage.run_covered (Array.of_list cases)
  in
  let class_counts = Array.make Coverage.n_events 0 in
  let failed = ref 0 in
  Array.iteri
    (fun i r ->
      match r with
      | None -> incr failed
      | Some ((o : Explorer.outcome), cov) ->
        if not (Explorer.same_class o.Explorer.verdict Explorer.Pass) then begin
          incr failed;
          Printf.printf "  NOT CLEAN: %s -> %s\n"
            (Explorer.to_string (List.nth cases i))
            (Explorer.verdict_to_string o.Explorer.verdict)
        end
        else
          List.iter
            (fun (_, j) ->
              if Coverage.covers cov j then
                class_counts.(j) <- class_counts.(j) + 1)
            Coverage.rare_classes)
    results;
  List.iter
    (fun (name, i) ->
      Printf.printf "  %-15s %d witness%s\n" name class_counts.(i)
        (if class_counts.(i) = 1 then "" else "es"))
    Coverage.rare_classes;
  let missing =
    List.filter (fun (_, i) -> class_counts.(i) = 0) Coverage.rare_classes
  in
  if !failed > 0 then begin
    Printf.printf "%d case(s) not clean\n" !failed;
    1
  end
  else if missing <> [] then begin
    Printf.printf "MISSING witnesses: %s\n"
      (String.concat ", " (List.map fst missing));
    1
  end
  else begin
    print_endline "all rare event classes witnessed";
    0
  end

let () =
  match Array.to_list Sys.argv with
  | _ :: "smoke" :: args -> exit (smoke args)
  | _ :: "corpus" :: path :: args -> exit (corpus path args)
  | _ :: "replay" :: path :: args -> exit (replay path args)
  | _ :: "profile" :: args -> exit (profile args)
  | _ :: "grow" :: out :: args -> exit (grow out args)
  | _ :: "coverage" :: path :: args -> exit (coverage path args)
  | _ -> usage ()
