(* Bench trend tracking over the committed BENCH_HISTORY.jsonl.

   BENCH_HISTORY.jsonl is an append-only record, one compact JSON line
   per accepted bench run, committed to the repo so CI can diff the
   current run against where the numbers have historically been:

   - [trend.exe --append]: summarize the current out/BENCH_RESULTS.json
     into one history line and append it. Run locally when landing a
     change that intentionally moves the numbers, and commit the file.
   - [trend.exe --check]: gate the current out/BENCH_RESULTS.json.
     Structural invariants, the exact-zero allocation pins and the hard
     safety bits (violations/failed, stall-row attribution) always gate;
     throughput-ish ratios are compared against the history median with
     deliberately wide tolerances (4x/8x) so shared CI runners never
     flake the build — the history exists to catch order-of-magnitude
     rot, not 10% noise. An empty or missing history passes the
     comparison step with a note (the current-run gates still apply).

   Flags: [--results PATH] (default out/BENCH_RESULTS.json),
   [--history PATH] (default BENCH_HISTORY.jsonl). Exit 1 on any failed
   gate, with one "TREND FAIL:" line per violation. *)

module Json = Qs_util.Json

let default_results = Filename.concat "out" "BENCH_RESULTS.json"
let default_history = "BENCH_HISTORY.jsonl"

let usage () =
  prerr_endline
    "usage: trend.exe (--check | --append) [--results PATH] [--history PATH]";
  exit 2

type flags = { mode : [ `Check | `Append ] option; results : string; history : string }

let rec parse_flags acc = function
  | [] -> acc
  | "--check" :: rest -> parse_flags { acc with mode = Some `Check } rest
  | "--append" :: rest -> parse_flags { acc with mode = Some `Append } rest
  | "--results" :: p :: rest -> parse_flags { acc with results = p } rest
  | "--history" :: p :: rest -> parse_flags { acc with history = p } rest
  | a :: _ ->
    Printf.eprintf "trend.exe: unknown argument %s\n" a;
    usage ()

(* --- tiny JSON accessors -------------------------------------------------- *)

let num j k =
  match Json.member k j with Some (Json.Num f) -> Some f | _ -> None

let bool_ j k =
  match Json.member k j with Some (Json.Bool b) -> Some b | _ -> None

let arr j k = match Json.member k j with Some a -> Json.to_list a | None -> []

let require what = function
  | Some v -> v
  | None -> failwith (Printf.sprintf "results missing %s" what)

(* One-line serializer: [Json.to_string] is the two-space pretty printer,
   but .jsonl needs exactly one line per record. *)
let rec compact = function
  | Json.Null -> "null"
  | Json.Bool b -> string_of_bool b
  | Json.Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.6g" f
  | Json.Str s ->
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  | Json.Arr xs -> "[" ^ String.concat ", " (List.map compact xs) ^ "]"
  | Json.Obj fields ->
    "{"
    ^ String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k (compact v)) fields)
    ^ "}"

(* --- summary extraction --------------------------------------------------- *)

(* The history line keeps only what --check compares: the pins, the
   safety bits and the headline ratios. Whole-run detail stays in the
   (uncommitted) out/BENCH_RESULTS.json artifacts. *)
let summarize results =
  let schema = require "schema" (num results "schema") in
  let bags = require "bags object" (Json.member "bags" results) in
  let bag_rows = arr bags "rows" in
  let big =
    List.filter
      (fun r -> match num r "limbo" with Some l -> l >= 10_000. | None -> false)
      bag_rows
  in
  let bag_min_speedup =
    List.fold_left
      (fun acc r ->
        match num r "speedup" with Some s -> Float.min acc s | None -> acc)
      infinity big
  in
  let membership_speedup =
    List.fold_left
      (fun acc m ->
        match (num m "nk", num m "speedup") with
        | Some 1024., Some s -> Some s
        | _ -> acc)
      None
      (arr results "membership")
  in
  let count_bad rows =
    List.length
      (List.filter
         (fun r ->
           num r "violations" <> Some 0. || bool_ r "failed" <> Some false)
         rows)
  in
  let e2e = arr results "e2e" and rivals = arr results "rivals" in
  let trace = require "trace object" (Json.member "trace" results) in
  let latency =
    match Json.member "latency" results with
    | None | Some Json.Null -> Json.Null
    | Some lat ->
      let stall_row =
        List.find_opt
          (fun r -> bool_ r "stall" = Some true)
          (arr lat "rows")
      in
      let stall_p999, stall_attr =
        match stall_row with
        | Some r ->
          ( require "stall p999" (num r "p999"),
            require "stall attr_pct" (num r "attr_pct") )
        | None -> (0., 0.)
      in
      Json.Obj
        [ ("alloc_words", Json.Num (require "latency alloc" (num lat "alloc_words_per_record")));
          ("overhead_pct", Json.Num (require "latency overhead" (num lat "overhead_pct")));
          ("rows", Json.Num (float_of_int (List.length (arr lat "rows"))));
          ("stall_p999", Json.Num stall_p999);
          ("stall_attr_pct", Json.Num stall_attr) ]
  in
  let service =
    match Json.member "service" results with
    | None | Some Json.Null -> Json.Null
    | Some svc ->
      let rows = arr svc "rows" in
      let matrix = List.filter (fun r -> bool_ r "stall" = Some false) rows in
      let bad =
        List.length
          (List.filter
             (fun r ->
               num r "violations" <> Some 0. || bool_ r "leak_ok" <> Some true)
             rows)
      in
      let stall_row =
        List.find_opt (fun r -> bool_ r "stall" = Some true) rows
      in
      let stall_p999, stall_attr, stall_fallback =
        match stall_row with
        | Some r ->
          ( require "service stall p999" (num r "p999"),
            require "service stall attr_pct" (num r "attr_pct"),
            (match Json.member "attr" r with
            | Some a -> Option.value ~default:0. (num a "fallback")
            | None -> 0.) )
        | None -> (0., 0., 0.)
      in
      let real = require "service real row" (Json.member "real" svc) in
      Json.Obj
        [ ("get_alloc_words",
           Json.Num
             (require "service get alloc" (num svc "get_alloc_words_per_op")));
          ("matrix_rows", Json.Num (float_of_int (List.length matrix)));
          ("bad_rows", Json.Num (float_of_int bad));
          ("stall_p999", Json.Num stall_p999);
          ("stall_attr_pct", Json.Num stall_attr);
          ("stall_fallback_spikes", Json.Num stall_fallback);
          ("real_mops", Json.Num (require "service real mops" (num real "throughput_mops")));
          ("real_bad",
           Json.Num
             (if num real "violations" = Some 0. && bool_ real "failed" = Some false
              then 0.
              else 1.)) ]
  in
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Json.Obj
    [ ("time",
       Json.Str
         (Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
            (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
            tm.Unix.tm_sec));
      ("schema", Json.Num schema);
      ("quick", Json.Bool (bool_ results "quick" = Some true));
      ("churn", Json.Bool (bool_ results "churn" = Some true));
      ("bag_min_speedup",
       Json.Num (if bag_min_speedup = infinity then 0. else bag_min_speedup));
      ("bag_retire_alloc_words",
       Json.Num (require "bags.retire_alloc_words" (num bags "retire_alloc_words")));
      ("membership_speedup_1024",
       Json.Num (Option.value ~default:0. membership_speedup));
      ("trace_alloc_disabled",
       Json.Num (require "trace alloc disabled" (num trace "alloc_words_per_event_disabled")));
      ("trace_alloc_enabled",
       Json.Num (require "trace alloc enabled" (num trace "alloc_words_per_event_enabled")));
      ("e2e_rows", Json.Num (float_of_int (List.length e2e)));
      ("e2e_bad", Json.Num (float_of_int (count_bad e2e)));
      ("rival_rows", Json.Num (float_of_int (List.length rivals)));
      ("rival_bad", Json.Num (float_of_int (count_bad rivals)));
      ("latency", latency);
      ("service", service) ]

(* --- history I/O ----------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_history path =
  if not (Sys.file_exists path) then []
  else
    String.split_on_char '\n' (read_file path)
    |> List.filter_map (fun line ->
           let line = String.trim line in
           if line = "" then None
           else
             match Json.parse line with
             | Ok j -> Some j
             | Error e ->
               Printf.eprintf "trend.exe: skipping malformed history line (%s)\n" e;
               None)

(* --- check gates ----------------------------------------------------------- *)

let failures : string list ref = ref []
let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt

let median xs =
  match List.sort compare xs with
  | [] -> None
  | sorted -> Some (List.nth sorted (List.length sorted / 2))

(* Ratio gates compare against the median of the (same --quick flavour)
   history; a missing metric in old lines just thins the sample. *)
let history_metric history key sub =
  List.filter_map
    (fun line ->
      match sub with
      | None -> num line key
      | Some inner -> (
        match Json.member inner line with
        | Some (Json.Obj _ as o) -> num o key
        | _ -> None))
    history

let check ~results_path ~history_path =
  let results = Json.parse_exn (read_file results_path) in
  let summary = summarize results in
  (* -- structural + pins + safety: always gate, no history needed -- *)
  if num results "schema" <> Some 9. then
    fail "schema is %s, expected 9"
      (match num results "schema" with
      | Some f -> Printf.sprintf "%.0f" f
      | None -> "missing");
  let pin name v = if v <> Some 0. then
    fail "%s = %s (exact-zero allocation pin)" name
      (match v with Some f -> Printf.sprintf "%.4f" f | None -> "missing")
  in
  pin "bags.retire_alloc_words" (num summary "bag_retire_alloc_words");
  pin "trace.alloc_words_per_event_disabled" (num summary "trace_alloc_disabled");
  pin "trace.alloc_words_per_event_enabled" (num summary "trace_alloc_enabled");
  if num summary "e2e_bad" <> Some 0. then
    fail "e2e rows with violations/failures";
  if num summary "rival_bad" <> Some 0. then
    fail "rival rows with violations/failures";
  (match Json.member "latency" summary with
  | Some (Json.Obj _ as lat) ->
    pin "latency.alloc_words_per_record" (num lat "alloc_words");
    let attr = Option.value ~default:0. (num lat "stall_attr_pct") in
    if attr < 80. then
      fail "stall-row attribution %.0f%% < 80%%" attr;
    if Option.value ~default:0. (num lat "stall_p999") <= 0. then
      fail "stall-row p999 is zero (no tail recorded)"
  | _ -> ());
  (match Json.member "service" summary with
  | Some (Json.Obj _ as svc) ->
    pin "service.get_alloc_words_per_op" (num svc "get_alloc_words");
    if num svc "matrix_rows" <> Some 8. then
      fail "service matrix has %s rows, expected 8 ({qsbr,hp,cadence,qsense} x {uniform,zipfian})"
        (match num svc "matrix_rows" with
        | Some f -> Printf.sprintf "%.0f" f
        | None -> "missing");
    if num svc "bad_rows" <> Some 0. then
      fail "service rows with violations or leaks";
    if num svc "real_bad" <> Some 0. then
      fail "service real-domain row has violations or failed";
    let attr = Option.value ~default:0. (num svc "stall_attr_pct") in
    if attr < 80. then
      fail "service stall-row attribution %.0f%% < 80%%" attr;
    if Option.value ~default:0. (num svc "stall_fallback_spikes") <= 0. then
      fail "service stall row has no fallback-attributed spikes"
  | _ -> ());
  (* -- ratio gates vs committed history (wide tolerance) -- *)
  let history =
    let all = load_history history_path in
    let quick = bool_ summary "quick" in
    match List.filter (fun l -> bool_ l "quick" = quick) all with
    | [] -> all (* fall back to any flavour rather than no baseline *)
    | same -> same
  in
  (if history = [] then
     Printf.printf "trend: no committed history at %s — ratio gates skipped\n"
       history_path
   else
     let vs name current baseline_ok =
       match current with
       | None -> ()
       | Some c -> (
         match median (history_metric history name None) with
         | None | Some 0. -> ()
         | Some m -> if not (baseline_ok c m) then
           fail "%s = %.3f vs history median %.3f (outside tolerance)" name c m)
     in
     vs "bag_min_speedup" (num summary "bag_min_speedup")
       (fun c m -> c >= m /. 4.);
     vs "membership_speedup_1024" (num summary "membership_speedup_1024")
       (fun c m -> c >= m /. 4.);
     (match Json.member "latency" summary with
     | Some (Json.Obj _ as lat) ->
       let hist_lat key = history_metric history key (Some "latency") in
       (match (num lat "overhead_pct", median (hist_lat "overhead_pct")) with
       | Some c, Some m ->
         if c > Float.max 10. (Float.abs m *. 4.) then
           fail "latency overhead %.1f%% vs history median %.1f%%" c m
       | _ -> ());
       (match (num lat "stall_p999", median (hist_lat "stall_p999")) with
       | Some c, Some m when m > 0. ->
         if c > m *. 8. then
           fail "stall p999 %.0f ticks vs history median %.0f (> 8x)" c m
       | _ -> ())
     | _ -> ());
     (match Json.member "service" summary with
     | Some (Json.Obj _ as svc) ->
       let hist_svc key = history_metric history key (Some "service") in
       (match (num svc "real_mops", median (hist_svc "real_mops")) with
       | Some c, Some m when m > 0. ->
         if c < m /. 4. then
           fail "service real Mops %.3f vs history median %.3f (< 1/4)" c m
       | _ -> ());
       (match (num svc "stall_p999", median (hist_svc "stall_p999")) with
       | Some c, Some m when m > 0. ->
         if c > m *. 8. then
           fail "service stall p999 %.0f ticks vs history median %.0f (> 8x)" c m
       | _ -> ())
     | _ -> ());
     Printf.printf "trend: compared against %d history line(s)\n"
       (List.length history));
  match !failures with
  | [] ->
    Printf.printf "trend OK: %s\n" (compact summary);
    0
  | fs ->
    List.iter (fun f -> Printf.printf "TREND FAIL: %s\n" f) (List.rev fs);
    1

let append ~results_path ~history_path =
  let results = Json.parse_exn (read_file results_path) in
  let summary = summarize results in
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 history_path
  in
  output_string oc (compact summary);
  output_char oc '\n';
  close_out oc;
  Printf.printf "appended to %s: %s\n" history_path (compact summary);
  0

let () =
  let flags =
    parse_flags
      { mode = None; results = default_results; history = default_history }
      (List.tl (Array.to_list Sys.argv))
  in
  let code =
    match flags.mode with
    | None -> usage ()
    | Some `Check ->
      check ~results_path:flags.results ~history_path:flags.history
    | Some `Append ->
      append ~results_path:flags.results ~history_path:flags.history
  in
  exit code
