(* Bechamel micro-benchmarks on the REAL runtime (OCaml 5 domains, real x86
   fences), one group per reproduced table/figure, plus quick simulator
   renditions of the paper's tables at the end.

   - "primitives":   the cost model the paper's argument rests on — a plain
                     store (Cadence's HP publication) vs an SC store vs a
                     full fence (classic HP's publication) vs CAS.
   - "fig3-*":       per-operation cost of the Figure 3 configuration
                     (linked list, 10% updates) under each scheme.
   - "fig5top-*":    per-operation cost of the Figure 5 top-row
                     configurations (50% updates) for list / skiplist / bst
                     / hashtable under each scheme.
   - "overheads":    derived §7.3-style table (overhead vs leaky, speedup
                     vs HP) computed from the measured ns/op.

   Single-domain measurements: Bechamel times closures on one core; the
   multi-core scalability curves come from the simulator (bin/repro.exe).
   On x86 the fence in [assign_hp] costs the same whether or not other
   cores run, so the per-op overhead ratios are the paper's. *)

open Bechamel
open Toolkit
module R = Qs_real.Real_runtime

(* Every generated artifact (JSON report, Perfetto traces, CSVs) lands in
   the gitignored [out/] directory instead of littering the repo root. *)
let out_path name =
  let dir = "out" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Filename.concat dir name

(* --- primitives ---------------------------------------------------------- *)

let plain_cell = R.plain 0
let atomic_cell = R.atomic 0

let primitives =
  [ Test.make ~name:"plain-write (cadence HP publish)"
      (Staged.stage (fun () -> R.write plain_cell 42));
    Test.make ~name:"plain-read" (Staged.stage (fun () -> ignore (R.read plain_cell)));
    Test.make ~name:"atomic-get" (Staged.stage (fun () -> ignore (R.get atomic_cell)));
    Test.make ~name:"atomic-set" (Staged.stage (fun () -> R.set atomic_cell 42));
    Test.make ~name:"fence (classic HP publish)" (Staged.stage (fun () -> R.fence ()));
    Test.make ~name:"cas"
      (Staged.stage (fun () ->
           let v = R.get atomic_cell in
           ignore (R.cas atomic_cell v v)))
  ]

(* --- per-operation data-structure benchmarks ----------------------------- *)

let schemes =
  [ Qs_smr.Scheme.None_; Qs_smr.Scheme.Qsbr; Qs_smr.Scheme.Qsense;
    Qs_smr.Scheme.Cadence; Qs_smr.Scheme.Hp ]

let set_cfg scheme =
  let base = Qs_ds.Set_intf.default_config ~n_processes:1 ~scheme in
  { base with
    smr =
      { base.smr with
        quiescence_threshold = 32;
        scan_threshold = 32;
        (* ns on the real clock: age out quickly so scans actually free *)
        rooster_interval = 50_000;
        epsilon = 10_000 } }

module Bench_set (C : Qs_harness.Cset.S) (Info : sig
  val name : string
  val range : int
end) =
struct
  let make ~update_pct scheme =
    let set = C.create (set_cfg scheme) in
    let ctx = C.register set ~pid:0 in
    let keys = Array.init (Info.range / 2) (fun i -> 2 * i) in
    Qs_util.Prng.shuffle (Qs_util.Prng.create ~seed:7) keys;
    Array.iter (fun k -> ignore (C.insert ctx k)) keys;
    let prng = Qs_util.Prng.create ~seed:42 in
    Test.make
      ~name:(Printf.sprintf "%s/%s" Info.name (Qs_smr.Scheme.to_string scheme))
      (Staged.stage (fun () ->
           let key = Qs_util.Prng.int prng Info.range in
           let pct = Qs_util.Prng.percent prng in
           if pct < update_pct / 2 then ignore (C.insert ctx key)
           else if pct < update_pct then ignore (C.delete ctx key)
           else ignore (C.search ctx key)))

  let group ~group_name ~update_pct =
    Test.make_grouped ~name:group_name (List.map (make ~update_pct) schemes)
end

module List_b =
  Bench_set (Qs_ds.Linked_list.Make (R)) (struct
    let name = "list"
    let range = 512
  end)

module Skip_b =
  Bench_set (Qs_ds.Skiplist.Make (R)) (struct
    let name = "skiplist"
    let range = 4_096
  end)

module Bst_b =
  Bench_set (Qs_ds.Bst.Make (R)) (struct
    let name = "bst"
    let range = 16_384
  end)

module Hash_b =
  Bench_set (Qs_ds.Hashtable.Make (R)) (struct
    let name = "hashtable"
    let range = 4_096
  end)

(* Stack and queue: the methodology examples, one push/pop (enqueue/dequeue)
   pair per iteration. *)

module Stack_b = struct
  module S = Qs_ds.Treiber_stack.Make (R)

  let make scheme =
    let st = S.create (set_cfg scheme) in
    let ctx = S.register st ~pid:0 in
    for i = 1 to 128 do
      S.push ctx i
    done;
    Test.make
      ~name:(Printf.sprintf "stack/%s" (Qs_smr.Scheme.to_string scheme))
      (Staged.stage (fun () ->
           S.push ctx 1;
           ignore (S.pop ctx)))

  let group () = Test.make_grouped ~name:"stack" (List.map make schemes)
end

module Queue_b = struct
  module Q = Qs_ds.Msqueue.Make (R)

  let make scheme =
    let q = Q.create (set_cfg scheme) in
    let ctx = Q.register q ~pid:0 in
    for i = 1 to 128 do
      Q.enqueue ctx i
    done;
    Test.make
      ~name:(Printf.sprintf "queue/%s" (Qs_smr.Scheme.to_string scheme))
      (Staged.stage (fun () ->
           Q.enqueue ctx 1;
           ignore (Q.dequeue ctx)))

  let group () = Test.make_grouped ~name:"queue" (List.map make schemes)
end

(* --- measurement machinery ----------------------------------------------- *)

let benchmark tests =
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.3) ~kde:None () in
  Benchmark.all cfg Instance.[ monotonic_clock ] tests

let analyze raw =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  Analyze.all ols Instance.monotonic_clock raw

let ns_per_run results name =
  match Hashtbl.find_opt results name with
  | None -> nan
  | Some ols -> (
    match Analyze.OLS.estimates ols with
    | Some [ e ] -> e
    | _ -> nan)

let run_group title tests =
  Printf.printf "== %s ==\n%!" title;
  let results = analyze (benchmark tests) in
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) results [] in
  let tbl = Qs_util.Table.create [ "benchmark"; "ns/op" ] in
  List.iter
    (fun name ->
      Qs_util.Table.add_row tbl [ name; Printf.sprintf "%.1f" (ns_per_run results name) ])
    (List.sort compare names);
  Qs_util.Table.print tbl;
  print_newline ();
  results

let overhead_table per_ds_results =
  let tbl =
    Qs_util.Table.create
      [ "scheme"; "list ns/op"; "skiplist ns/op"; "bst ns/op"; "hashtable ns/op";
        "avg overhead vs none (%)"; "speedup vs hp" ]
  in
  let dss = [ "list"; "skiplist"; "bst"; "hashtable" ] in
  let suffix_of ds scheme =
    Printf.sprintf "/%s/%s" ds (Qs_smr.Scheme.to_string scheme)
  in
  let cost ds scheme =
    let results = List.assoc ds per_ds_results in
    let suffix = suffix_of ds scheme in
    Hashtbl.fold
      (fun name _ acc ->
        if String.ends_with ~suffix name then ns_per_run results name else acc)
      results nan
  in
  (* Baselines are computed once, outside the per-scheme loop. *)
  let none_costs = List.map (fun ds -> cost ds Qs_smr.Scheme.None_) dss in
  let hp_costs = List.map (fun ds -> cost ds Qs_smr.Scheme.Hp) dss in
  List.iter
    (fun scheme ->
      let costs = List.map (fun ds -> cost ds scheme) dss in
      let over =
        (* throughput overhead = 1 - none/cost *)
        List.map2 (fun none_c c -> 100. *. (1. -. (none_c /. c))) none_costs costs
      in
      let speedups = List.map2 (fun hp_c c -> hp_c /. c) hp_costs costs in
      Qs_util.Table.add_row tbl
        (Qs_smr.Scheme.to_string scheme
        :: (List.map (Printf.sprintf "%.0f") costs
           @ [ Printf.sprintf "%.1f"
                 (Qs_util.Stats.mean (Array.of_list over));
               Printf.sprintf "%.2fx"
                 (Qs_util.Stats.mean (Array.of_list speedups))
             ])))
    schemes;
  Qs_util.Table.print tbl;
  print_newline ()

(* --- retire/scan microbenchmarks ----------------------------------------- *)

(* Head-to-head of the vector-based limbo list + sorted-id membership set
   against a faithful replica of the seed's list-based Cadence (wrapper cons
   per retire, [List.filter] + [List.length] per scan, [List.memq] over the
   hazard-pointer snapshot). Two scenarios per limbo size L:

   - "keep":  nothing is old enough, so scans compact the limbo list while
     keeping every node — the steady-state cost of retire + periodic scans
     (~8 scans per L retires).
   - "drain": everything is old enough and unprotected, so the scan that
     fires after L retires checks all L nodes against the N*K hazard
     pointers and frees them — the membership-heavy path.

   Growing state rules out bechamel's closure timing, so rounds are timed
   by hand on the monotonic clock and the best round is reported. *)

module Micro = struct
  type fake = { id : int; mutable freed : int }

  module FN = struct
    type t = fake

    let id n = n.id
  end

  let n_processes = 8
  let hp_per_process = 8

  let micro_cfg ~bags ~scan_threshold ~rooster_interval ~epsilon =
    { (Qs_smr.Smr_intf.default_config ~n_processes ~hp_per_process) with
      scan_threshold;
      (* exact scan cadence: the scenarios are defined by scans firing at
         precisely the configured threshold *)
      scan_factor = 0.;
      rooster_interval;
      epsilon;
      limbo_bags = bags }

  (* The vector/sorted-set implementation under test. *)
  module Cad_vec = Qs_smr.Cadence.Make (R) (FN)

  (* Replica of the seed's list-based Cadence hot path (retire + scan),
     kept as the before/after baseline for the JSON report. *)
  module Cad_list = struct
    module Hp = Qs_smr.Hp_array.Make (R) (FN)

    type wrapper = { node : fake; ts : int }

    type t = {
      cfg : Qs_smr.Smr_intf.config;
      hp : Hp.t;
      free : fake -> unit;
      mutable rlist : wrapper list;
      mutable rcount : int;
      mutable retires : int;
    }

    let create cfg ~dummy ~free =
      { cfg;
        hp = Hp.create ~n:cfg.Qs_smr.Smr_intf.n_processes ~k:cfg.hp_per_process ~dummy;
        free;
        rlist = [];
        rcount = 0;
        retires = 0 }

    let assign_hp t ~pid ~slot n = Hp.assign t.hp ~pid ~slot n

    let is_old_enough t ~now w =
      now - w.ts >= t.cfg.Qs_smr.Smr_intf.rooster_interval + t.cfg.epsilon

    let scan t =
      let now = R.now () in
      let snapshot = Hp.snapshot t.hp in
      let kept =
        List.filter
          (fun w ->
            if is_old_enough t ~now w && not (Hp.protects snapshot w.node) then begin
              t.free w.node;
              false
            end
            else true)
          t.rlist
      in
      t.rlist <- kept;
      t.rcount <- List.length kept

    let retire t n =
      t.rlist <- { node = n; ts = R.now () } :: t.rlist;
      t.rcount <- t.rcount + 1;
      t.retires <- t.retires + 1;
      if t.retires mod t.cfg.Qs_smr.Smr_intf.scan_threshold = 0 then scan t

    let flush t =
      List.iter (fun w -> t.free w.node) t.rlist;
      t.rlist <- [];
      t.rcount <- 0
  end

  let dummy = { id = -1; freed = 0 }

  (* Node pool reused across rounds; protected nodes live outside it. *)
  let pool l = Array.init l (fun i -> { id = i; freed = 0 })

  let protected_nodes =
    Array.init (n_processes * hp_per_process) (fun i ->
        { id = 1_000_000 + i; freed = 0 })

  let fill_hps assign =
    for pid = 0 to n_processes - 1 do
      for slot = 0 to hp_per_process - 1 do
        assign ~pid ~slot protected_nodes.((pid * hp_per_process) + slot)
      done
    done

  type scenario = Keep | Drain

  let scenario_name = function Keep -> "keep" | Drain -> "drain"

  let cfg_of_scenario scenario ~limbo ~bags =
    match scenario with
    | Keep ->
      (* Nothing ever ages out: scans keep the whole limbo list. ~8 scans
         over the L retires of a round. *)
      micro_cfg ~bags ~scan_threshold:(max 1 (limbo / 8))
        ~rooster_interval:max_int ~epsilon:0
    | Drain ->
      (* Everything is immediately old: the scan after the L-th retire
         checks every node against the N*K hazard pointers and frees it. *)
      micro_cfg ~bags ~scan_threshold:limbo ~rooster_interval:0 ~epsilon:0

  (* Returns best-round ns per retire (scan cost amortized in).
     [~bags:false] is the vec reference; [~bags:true] the DEBRA-style
     limbo bags (block capacity 64: one seal stamp and one age check per
     64 nodes, whole expired bags freed per walk step). *)
  (* Bulk free, as the data structures wire it ([Arena.free_many]): one
     callback per freed bag instead of one closure call per node. *)
  let free_one n = n.freed <- n.freed + 1

  let free_many data count =
    for i = 0 to count - 1 do
      let n = data.(i) in
      n.freed <- n.freed + 1
    done

  let run_cadence ~bags scenario ~limbo ~rounds =
    let cfg = cfg_of_scenario scenario ~limbo ~bags in
    let t = Cad_vec.create cfg ~free_bulk:free_many ~dummy ~free:free_one in
    let handles = Array.init n_processes (fun pid -> Cad_vec.register t ~pid) in
    fill_hps (fun ~pid ~slot n -> Cad_vec.assign_hp handles.(pid) ~slot n);
    let nodes = pool limbo in
    let h = handles.(0) in
    let best = ref max_float in
    for _round = 1 to rounds do
      let t0 = R.now () in
      for i = 0 to limbo - 1 do
        Cad_vec.retire h nodes.(i)
      done;
      let dt = float_of_int (R.now () - t0) in
      if dt < !best then best := dt;
      (* Keep rounds start from an empty limbo; Drain rounds already do. *)
      Cad_vec.flush h
    done;
    !best /. float_of_int limbo

  let run_vec = run_cadence ~bags:false
  let run_bag = run_cadence ~bags:true

  (* Steady-state allocation on the bag retire path, measured exactly like
     the test-suite pins: warm-up retires grow the block cache, a flush
     restocks it, and the measured window's retires (every 64th sealing a
     bag and drawing a fresh block) must then allocate exactly nothing. *)
  let bag_retire_alloc_words ~limbo =
    let cfg =
      micro_cfg ~bags:true ~scan_threshold:max_int ~rooster_interval:max_int
        ~epsilon:0
    in
    let t = Cad_vec.create cfg ~free_bulk:free_many ~dummy ~free:free_one in
    let h = Cad_vec.register t ~pid:0 in
    let node = { id = 0; freed = 0 } in
    for _i = 1 to limbo do
      Cad_vec.retire h node
    done;
    Cad_vec.flush h;
    Gc.minor ();
    let before = Gc.minor_words () in
    for _i = 1 to limbo do
      Cad_vec.retire h node
    done;
    let words = Gc.minor_words () -. before in
    Cad_vec.flush h;
    words

  let run_list scenario ~limbo ~rounds =
    let cfg = cfg_of_scenario scenario ~limbo ~bags:false in
    let t = Cad_list.create cfg ~dummy ~free:(fun n -> n.freed <- n.freed + 1) in
    fill_hps (fun ~pid ~slot n -> Cad_list.assign_hp t ~pid ~slot n);
    let nodes = pool limbo in
    let best = ref max_float in
    for _round = 1 to rounds do
      let t0 = R.now () in
      for i = 0 to limbo - 1 do
        Cad_list.retire t nodes.(i)
      done;
      let dt = float_of_int (R.now () - t0) in
      if dt < !best then best := dt;
      Cad_list.flush t
    done;
    !best /. float_of_int limbo

  type result = {
    scenario : scenario;
    limbo : int;
    list_ns : float;
    vec_ns : float;
    bag_ns : float;
  }

  let speedup r = r.list_ns /. r.vec_ns
  let bag_speedup r = r.vec_ns /. r.bag_ns

  let run ~sizes ~target_ops =
    List.concat_map
      (fun limbo ->
        let rounds = max 3 (target_ops / limbo) in
        List.map
          (fun scenario ->
            let list_ns = run_list scenario ~limbo ~rounds in
            let vec_ns = run_vec scenario ~limbo ~rounds in
            let bag_ns = run_bag scenario ~limbo ~rounds in
            { scenario; limbo; list_ns; vec_ns; bag_ns })
          [ Keep; Drain ])
      sizes

  let print_table results =
    let tbl =
      Qs_util.Table.create
        [ "scenario"; "limbo"; "list ns/retire"; "vec ns/retire";
          "bag ns/retire"; "vec/list"; "bag/vec" ]
    in
    List.iter
      (fun r ->
        Qs_util.Table.add_row tbl
          [ scenario_name r.scenario;
            string_of_int r.limbo;
            Printf.sprintf "%.1f" r.list_ns;
            Printf.sprintf "%.1f" r.vec_ns;
            Printf.sprintf "%.1f" r.bag_ns;
            Printf.sprintf "%.2fx" (speedup r);
            Printf.sprintf "%.2fx" (bag_speedup r) ])
      results;
    Qs_util.Table.print tbl;
    print_newline ()

end

(* --- hazard-pointer membership micro-comparison --------------------------- *)

(* Head-to-head of the production hash-set scan path
   ([Hp_array.snapshot_into] + [protects_set], expected O(1) per probe)
   against the PR 1 sorted-id reference ([snapshot_into_sorted] +
   [protects_sorted], O(log N·K) per probe plus an insertion sort per
   snapshot). Each timed round is one scan's worth of work: one snapshot of
   the N×K slots followed by [probes] membership checks, half of which hit
   (ids present in the slots) and half miss (odd ids; slots hold even ids
   only). Best-round ns amortised per probe. *)
module Membership = struct
  module Hp = Qs_smr.Hp_array.Make (R) (Micro.FN)

  type result = {
    nk : int;
    k : int;
    sorted_ns : float;
    hash_ns : float;
  }

  let speedup r = r.sorted_ns /. r.hash_ns
  let probes = 4_096

  let run_one ~nk ~rounds =
    let k = 8 in
    let n = nk / k in
    let dummy = { Micro.id = -1; freed = 0 } in
    let hp = Hp.create ~n ~k ~dummy in
    let nodes = Array.init nk (fun i -> { Micro.id = 2 * i; freed = 0 }) in
    for pid = 0 to n - 1 do
      for slot = 0 to k - 1 do
        Hp.assign hp ~pid ~slot nodes.((pid * k) + slot)
      done
    done;
    let prng = Qs_util.Prng.create ~seed:13 in
    let lookups =
      Array.init probes (fun i ->
          if i land 1 = 0 then nodes.(Qs_util.Prng.int prng nk) (* hit *)
          else { Micro.id = (2 * Qs_util.Prng.int prng nk) + 1; freed = 0 }
          (* miss *))
    in
    let hits = ref 0 in
    let time_best f =
      let best = ref max_float in
      for _round = 1 to rounds do
        let t0 = R.now () in
        f ();
        let dt = float_of_int (R.now () - t0) in
        if dt < !best then best := dt
      done;
      !best /. float_of_int probes
    in
    let sset = Hp.sorted_set hp in
    let sorted_ns =
      time_best (fun () ->
          Hp.snapshot_into_sorted hp sset;
          for i = 0 to probes - 1 do
            if Hp.protects_sorted sset lookups.(i) then incr hits
          done)
    in
    let hset = Hp.scan_set hp in
    let hash_ns =
      time_best (fun () ->
          Hp.snapshot_into hp hset;
          for i = 0 to probes - 1 do
            if Hp.protects_set hset lookups.(i) then incr hits
          done)
    in
    if !hits = 0 then Printf.printf "(impossible: no membership hits)\n";
    { nk; k; sorted_ns; hash_ns }

  let run ~quick =
    let rounds = if quick then 50 else 300 in
    List.map (fun nk -> run_one ~nk ~rounds) [ 64; 256; 1_024 ]

  let print_table results =
    let tbl =
      Qs_util.Table.create
        [ "N*K"; "sorted ns/probe"; "hash ns/probe"; "speedup" ]
    in
    List.iter
      (fun r ->
        Qs_util.Table.add_row tbl
          [ string_of_int r.nk;
            Printf.sprintf "%.1f" r.sorted_ns;
            Printf.sprintf "%.1f" r.hash_ns;
            Printf.sprintf "%.2fx" (speedup r) ])
      results;
    Qs_util.Table.print tbl;
    print_newline ()
end

(* --- end-to-end multicore sweep ------------------------------------------ *)

(* The whole stack at once, on real OCaml 5 domains via {!Qs_harness.Real_exp}:
   {qsbr, hp, cadence, qsense} × {list, hashtable} × domain counts. Where the
   bechamel groups above time single operations on one core, this measures
   aggregate throughput with reclamation actually feeding the allocator —
   [reuse_ratio] close to 1 is the proof that retire → scan → free → alloc
   recycles nodes at steady state, and [retired_peak] bounds the limbo
   memory. On machines with fewer cores than domains the domains timeshare;
   the numbers remain a valid safety/recycling check (violations = 0,
   failed = false) even when the scalability shape flattens. *)
module E2e = struct
  type result = {
    scheme : Qs_smr.Scheme.kind;
    ds : Qs_harness.Cset.kind;
    n_domains : int;
    throughput_mops : float;
    retired_peak : int;
    reuse_ratio : float;
    violations : int;
    failed : bool;
    churn_events : int;
  }

  let schemes =
    [ Qs_smr.Scheme.Qsbr; Qs_smr.Scheme.Hp; Qs_smr.Scheme.Cadence;
      Qs_smr.Scheme.Qsense ]

  (* The rival-scheme zoo (cross-paper comparison, DESIGN.md §13): same
     matrix, reported in the JSON's separate "rivals" section so the CI
     guard over the incumbents' numbers is not disturbed. *)
  let rival_schemes = [ Qs_smr.Scheme.Debra_plus; Qs_smr.Scheme.Hyaline ]

  let structures = [ Qs_harness.Cset.List; Qs_harness.Cset.Hashtable ]

  let domain_counts ~quick =
    List.sort_uniq compare
      (if quick then [ 1; 2 ]
       else [ 1; 2; 4; Domain.recommended_domain_count () ])

  let key_range = function
    | Qs_harness.Cset.List -> 512
    | _ -> 4_096

  let run_one ~quick ~churn ~ds ~scheme ~n_domains =
    let workload =
      Qs_workload.Spec.make ~key_range:(key_range ds) ~update_pct:20
    in
    let setup =
      { (Qs_harness.Real_exp.default_setup ~ds ~scheme ~n_domains ~workload) with
        duration_ms = (if quick then 50 else 250);
        (* --churn: three worker generations per pid slot, each handing its
           limbo lists to the orphan pool for the survivors to adopt *)
        churn =
          (if churn then
             Some
               { Qs_harness.Real_exp.generations = 3;
                 downtime_ms = (if quick then 2 else 10) }
           else None);
        seed = 42 }
    in
    let r = Qs_harness.Real_exp.run setup in
    let reuse_ratio =
      let a = r.report.allocations in
      if a = 0 then 0.
      else float_of_int (a - r.report.fresh_nodes) /. float_of_int a
    in
    { scheme;
      ds;
      n_domains;
      throughput_mops = r.throughput_mops;
      retired_peak = r.report.smr.retired_peak;
      reuse_ratio;
      violations = r.violations;
      failed = r.failed;
      churn_events = r.churn_events }

  let run_matrix ~quick ~churn schemes =
    List.concat_map
      (fun ds ->
        List.concat_map
          (fun scheme ->
            List.map
              (fun n_domains ->
                let r = run_one ~quick ~churn ~ds ~scheme ~n_domains in
                Printf.printf "  %-9s %-9s %d domains: %6.2f Mops/s%s\n%!"
                  (Qs_harness.Cset.kind_to_string ds)
                  (Qs_smr.Scheme.to_string scheme)
                  n_domains r.throughput_mops
                  (if churn then
                     Printf.sprintf " (%d churn events)" r.churn_events
                   else "");
                r)
              (domain_counts ~quick))
          schemes)
      structures

  let run ~quick ~churn = run_matrix ~quick ~churn schemes
  let run_rivals ~quick ~churn = run_matrix ~quick ~churn rival_schemes

  let print_table results =
    let tbl =
      Qs_util.Table.create
        [ "structure"; "scheme"; "domains"; "Mops/s"; "retired peak";
          "reuse ratio"; "violations"; "failed"; "churn" ]
    in
    List.iter
      (fun r ->
        Qs_util.Table.add_row tbl
          [ Qs_harness.Cset.kind_to_string r.ds;
            Qs_smr.Scheme.to_string r.scheme;
            string_of_int r.n_domains;
            Printf.sprintf "%.2f" r.throughput_mops;
            string_of_int r.retired_peak;
            Printf.sprintf "%.3f" r.reuse_ratio;
            string_of_int r.violations;
            string_of_bool r.failed;
            string_of_int r.churn_events ])
      results;
    Qs_util.Table.print tbl;
    print_newline ()
end

(* --- reclamation observatory (--trace) ------------------------------------ *)

(* The tracing subsystem exercised end to end (see DESIGN.md §9 and
   EXPERIMENTS.md, "Reclamation observatory"):

   - a traced Cadence run on the simulator, rendering the age-at-free
     histogram whose minimum exhibits the paper's [T + epsilon] floor, plus
     per-process limbo-depth sparklines — and exporting the trace as Chrome
     trace-event JSON (Perfetto) and CSV;
   - a traced QSense run with a stalled victim, rendering the fallback
     round-trip (enter → dwell → exit) as a timeline;
   - the overhead A/B the zero-cost claim rests on: minor words allocated
     per recorded event (disabled and enabled tracer — both must be 0) and
     real-runtime throughput with the sink off vs on. The off/on numbers
     land in the JSON report's "trace" section so CI can watch them. *)
module Observatory = struct
  open Qs_intf.Runtime_intf

  let t_plus_eps =
    Qs_harness.Sim_exp.default_rooster_interval
    + Qs_harness.Sim_exp.default_epsilon

  let traced_sim ~ds ~scheme ~n_processes ~duration ~delays ~key_range
      ~smr_tweak () =
    let tracer =
      Qs_obs.Tracer.create ~n_processes ~capacity:(1 lsl 16) ()
    in
    let workload = Qs_workload.Spec.make ~key_range ~update_pct:50 in
    let setup =
      { (Qs_harness.Sim_exp.default_setup ~ds ~scheme ~n_processes ~workload) with
        duration;
        seed = 11;
        delays;
        smr_tweak;
        sink = Some (Qs_obs.Tracer.sink tracer) }
    in
    let r = Qs_harness.Sim_exp.run setup in
    (tracer, r)

  (* Compress a [(time, depth)] series to [n] evenly spaced depth samples. *)
  let resample series n =
    let len = Array.length series in
    if len = 0 then [||]
    else
      Array.init n (fun i ->
          let j = i * (len - 1) / max 1 (n - 1) in
          float_of_int (snd series.(j)))

  let cadence_age () =
    Printf.printf
      "-- cadence: age at free (sim; floor T+eps = %d ticks) --\n%!" t_plus_eps;
    let tracer, r =
      traced_sim ~ds:Qs_harness.Cset.List ~scheme:Qs_smr.Scheme.Cadence
        ~n_processes:4 ~duration:800_000 ~delays:None ~key_range:64
        (* scans must actually fire within the run for frees to appear:
           drop the adaptive scan threshold to every 16 retires *)
        ~smr_tweak:(fun c ->
          { c with Qs_smr.Smr_intf.scan_threshold = 16; scan_factor = 0. })
        ()
    in
    let entries = Qs_obs.Tracer.to_array tracer in
    let ages = Qs_obs.Metrics.ages_at_free entries in
    Printf.printf "events retained %d (dropped %d), retires %d, frees %d\n"
      (Qs_obs.Tracer.total tracer)
      (Qs_obs.Tracer.total_dropped tracer)
      (Qs_obs.Metrics.retires_total entries)
      (Qs_obs.Metrics.frees_total entries);
    if Array.length ages = 0 then
      Printf.printf "no frees recorded (run too short?)\n"
    else begin
      let min_age = Array.fold_left min max_int ages in
      Printf.printf "min age at free: %d ticks vs floor %d  [%s]\n" min_age
        t_plus_eps
        (if min_age >= t_plus_eps then "ok" else "VIOLATED");
      match Qs_obs.Metrics.age_histogram ~buckets:12 entries with
      | None -> ()
      | Some h -> print_string (Qs_util.Histogram.to_ascii h ~width:40)
    end;
    for pid = 0 to 3 do
      let series = Qs_obs.Metrics.limbo_series entries ~pid in
      Printf.printf "limbo depth p%d: %s (max %d)\n" pid
        (Qs_util.Histogram.sparkline (resample series 48))
        (Qs_obs.Metrics.max_limbo entries ~pid)
    done;
    ignore r.Qs_harness.Sim_exp.ops_total;
    Qs_obs.Export.save_chrome tracer (out_path "cadence_age.trace.json");
    Qs_obs.Export.save_csv tracer (out_path "cadence_age.csv");
    Printf.printf "wrote out/cadence_age.trace.json, out/cadence_age.csv\n\n%!"

  let qsense_fallback () =
    Printf.printf
      "-- qsense: fallback round-trip under a stalled victim (sim) --\n%!";
    let tracer, r =
      traced_sim ~ds:Qs_harness.Cset.List ~scheme:Qs_smr.Scheme.Qsense
        ~n_processes:4 ~duration:2_500_000
        ~delays:
          (Some
             { Qs_harness.Sim_exp.victim = 3;
               windows = [ (100_000, 1_600_000) ] })
        ~key_range:32
        (* C = 48: the explorer's fallback round-trip configuration — small
           enough that the stalled victim's pinned epoch pushes the limbo
           over it well inside the window *)
        ~smr_tweak:(fun c -> { c with Qs_smr.Smr_intf.switch_threshold = 48 })
        ()
    in
    let entries = Qs_obs.Tracer.to_array tracer in
    let episodes = Qs_obs.Metrics.fallback_episodes entries in
    Printf.printf "fallback/fast switches: %d/%d; episodes seen in trace: %d\n"
      r.Qs_harness.Sim_exp.report.smr.fallback_switches
      r.Qs_harness.Sim_exp.report.smr.fastpath_switches
      (List.length episodes);
    List.iter
      (fun (e : Qs_obs.Metrics.episode) ->
        match e.exit_time, e.dwell with
        | Some t1, Some d ->
          Printf.printf
            "  p%d: enter @%d (limbo %d) -> exit @%d (dwell %d ticks)\n"
            e.ep_pid e.enter_time e.limbo_at_enter t1 d
        | _ ->
          Printf.printf "  p%d: enter @%d (limbo %d) -> still in fallback\n"
            e.ep_pid e.enter_time e.limbo_at_enter)
      episodes;
    let lags = Qs_obs.Metrics.epoch_lags entries in
    if Array.length lags > 0 then begin
      let fl = Array.map float_of_int lags in
      Printf.printf "epoch lag (ticks): p50 %.0f, p99 %.0f, max %.0f\n"
        (Qs_util.Stats.percentile fl 50.)
        (Qs_util.Stats.percentile fl 99.)
        (Qs_util.Stats.percentile fl 100.)
    end;
    Qs_obs.Export.save_chrome tracer (out_path "qsense_fallback.trace.json");
    Printf.printf "wrote out/qsense_fallback.trace.json\n\n%!"

  (* Minor words allocated per recorded event, measured through the sink
     exactly as the runtimes use it. Must be 0.0 enabled or disabled; the
     matching hard guard lives in test/test_obs.ml. *)
  let alloc_per_event ~enabled =
    let tracer = Qs_obs.Tracer.create ~enabled ~n_processes:1 ~capacity:1024 () in
    let s = Qs_obs.Tracer.sink tracer in
    let n = 100_000 in
    for i = 1 to 64 do
      s.record ~pid:0 ~time:i ~ev:Ev_retire ~a:i ~b:i
    done;
    let w0 = Gc.minor_words () in
    for i = 1 to n do
      s.record ~pid:0 ~time:i ~ev:Ev_retire ~a:i ~b:i
    done;
    let w1 = Gc.minor_words () in
    (w1 -. w0) /. float_of_int n

  type overhead = {
    alloc_disabled : float;
    alloc_enabled : float;
    mops_sink_off : float;
    mops_sink_on : float;
    events_on : int;
  }

  (* Same real-runtime run with and without a sink installed: the off run
     is the product configuration, the on run bounds what full tracing
     costs. *)
  let throughput_ab ~quick =
    let ds = Qs_harness.Cset.List and scheme = Qs_smr.Scheme.Cadence in
    let workload = Qs_workload.Spec.make ~key_range:512 ~update_pct:50 in
    let duration_ms = if quick then 50 else 200 in
    let base =
      { (Qs_harness.Real_exp.default_setup ~ds ~scheme ~n_domains:2 ~workload) with
        duration_ms;
        seed = 42 }
    in
    let off = Qs_harness.Real_exp.run base in
    let tracer = Qs_obs.Tracer.create ~n_processes:2 ~capacity:(1 lsl 16) () in
    let on =
      Qs_harness.Real_exp.run
        { base with sink = Some (Qs_obs.Tracer.sink tracer) }
    in
    ( off.Qs_harness.Real_exp.throughput_mops,
      on.Qs_harness.Real_exp.throughput_mops,
      Qs_obs.Tracer.total tracer + Qs_obs.Tracer.total_dropped tracer )

  let overhead ~quick =
    let alloc_disabled = alloc_per_event ~enabled:false in
    let alloc_enabled = alloc_per_event ~enabled:true in
    let mops_sink_off, mops_sink_on, events_on = throughput_ab ~quick in
    { alloc_disabled; alloc_enabled; mops_sink_off; mops_sink_on; events_on }

  let print_overhead o =
    let tbl = Qs_util.Table.create [ "metric"; "value" ] in
    Qs_util.Table.add_row tbl
      [ "minor words/event (tracer disabled)";
        Printf.sprintf "%.4f" o.alloc_disabled ];
    Qs_util.Table.add_row tbl
      [ "minor words/event (tracer enabled)";
        Printf.sprintf "%.4f" o.alloc_enabled ];
    Qs_util.Table.add_row tbl
      [ "real cadence/list Mops/s (sink off)";
        Printf.sprintf "%.2f" o.mops_sink_off ];
    Qs_util.Table.add_row tbl
      [ "real cadence/list Mops/s (sink on)";
        Printf.sprintf "%.2f" o.mops_sink_on ];
    Qs_util.Table.add_row tbl
      [ "events recorded (sink on)"; string_of_int o.events_on ];
    Qs_util.Table.print tbl;
    print_newline ()

  let dashboard () =
    Printf.printf "== reclamation observatory (--trace) ==\n%!";
    cadence_age ();
    qsense_fallback ()
end

(* --- latency observatory (--latency) -------------------------------------- *)

(* Per-operation latency histograms on both runtimes (DESIGN.md §14):

   - a sim matrix {qsbr, hp, cadence, qsense} × {list, hashtable} ×
     process counts, each run recording per-{pid × op-kind} online
     histograms (durations in virtual ticks; end timestamps are
     meta-level clock reads, so the seeded schedule is byte-identical
     with the recorder on or off) with the tracer installed — every row
     carries p50/p99/p999/max plus a p999 spike attribution joining the
     recorder's top-K outliers against the reclamation event stream;
   - the robustness row ("stall"): QSense at C = 48 with a stalled
     victim that never resumes, so the scheme sits in fallback from
     ~150k ticks to the end of the run and the tail of the latency
     distribution IS fallback dwell. The CI gate asserts ≥ 80% of the
     p999-bucket spikes in this row carry a named cause;
   - the overhead A/B the zero-cost claim rests on: minor words
     allocated per recorded op (must be exactly 0 — [Latency.observe]
     is integer arithmetic over flat arrays) and real-runtime
     throughput with the recorder off vs on. *)
module Latency_obs = struct
  module L = Qs_obs.Latency
  module M = Qs_obs.Metrics

  type row = {
    ds : Qs_harness.Cset.kind;
    scheme : Qs_smr.Scheme.kind;
    n : int;
    stall : bool;
    ops : int;
    p50 : int;
    p99 : int;
    p999 : int;
    lmax : int;
    attr : M.attribution;
  }

  (* Shorter list than the throughput sweeps (128-key range): per-op
     latency on a 256-node list is thousands of ticks, which starves the
     histogram of samples inside the run budget. *)
  let key_range = function Qs_harness.Cset.List -> 128 | _ -> 4_096

  (* The stall row replays the calibrated robustness scenario from
     test/test_latency.ml: key range 32 keeps the victim's pinned epoch
     hot, C = 48 pushes QSense over the switch threshold well inside the
     run, and the never-ending stall leaves the fallback episode open to
     the end of the trace. *)
  let sim_row ~quick ~ds ~scheme ~n ~stall =
    let rec_ =
      L.recorder ~n_processes:n ~n_kinds:Qs_workload.Spec.n_kinds ()
    in
    let tracer = Qs_obs.Tracer.create ~n_processes:n ~capacity:(1 lsl 15) () in
    let workload =
      Qs_workload.Spec.make
        ~key_range:(if stall then 32 else key_range ds)
        ~update_pct:50
    in
    let duration =
      if stall then 600_000 else if quick then 150_000 else 400_000
    in
    let setup =
      { (Qs_harness.Sim_exp.default_setup ~ds ~scheme ~n_processes:n ~workload) with
        duration;
        seed = 23;
        latency = Some rec_;
        sink = Some (Qs_obs.Tracer.sink tracer);
        faults =
          (if stall then
             [ Qs_sim.Scheduler.Stall_at { pid = n - 1; at = 20_000; ticks = duration } ]
           else []);
        smr_tweak =
          (if stall then fun c -> { c with Qs_smr.Smr_intf.switch_threshold = 48 }
           else Fun.id) }
    in
    let r = Qs_harness.Sim_exp.run setup in
    let merged = L.merged rec_ in
    let threshold = L.lower_edge (L.percentile_bucket merged 99.9) in
    let attr =
      M.attribute_spikes
        (Qs_obs.Tracer.to_array tracer)
        ~outliers:(L.outliers rec_) ~threshold
    in
    { ds;
      scheme;
      n;
      stall;
      ops = r.Qs_harness.Sim_exp.ops_total;
      p50 = L.percentile merged 50.;
      p99 = L.percentile merged 99.;
      p999 = L.percentile merged 99.9;
      lmax = L.max_value merged;
      attr }

  let top_cause (a : M.attribution) =
    let named =
      List.filter
        (fun (c, k) -> c <> M.Unattributed && k > 0)
        a.M.attr_counts
    in
    match List.sort (fun (_, x) (_, y) -> compare y x) named with
    | (c, _) :: _ -> M.cause_name c
    | [] -> "-"

  let schemes =
    [ Qs_smr.Scheme.Qsbr; Qs_smr.Scheme.Hp; Qs_smr.Scheme.Cadence;
      Qs_smr.Scheme.Qsense ]

  let rows ~quick =
    let domain_counts = if quick then [ 2 ] else [ 2; 4 ] in
    let clean =
      List.concat_map
        (fun ds ->
          List.concat_map
            (fun scheme ->
              List.map
                (fun n ->
                  let r = sim_row ~quick ~ds ~scheme ~n ~stall:false in
                  Printf.printf
                    "  %-9s %-9s %d procs: p999 %7d ticks, %d ops\n%!"
                    (Qs_harness.Cset.kind_to_string ds)
                    (Qs_smr.Scheme.to_string scheme)
                    n r.p999 r.ops;
                  r)
                domain_counts)
            schemes)
        [ Qs_harness.Cset.List; Qs_harness.Cset.Hashtable ]
    in
    let stall =
      sim_row ~quick ~ds:Qs_harness.Cset.List ~scheme:Qs_smr.Scheme.Qsense
        ~n:4 ~stall:true
    in
    Printf.printf
      "  stall row: p999 %d ticks, %d/%d spikes attributed (%.0f%%, top %s)\n%!"
      stall.p999
      (stall.attr.M.attr_total
      - List.assoc M.Unattributed stall.attr.M.attr_counts)
      stall.attr.M.attr_total
      (M.attributed_pct stall.attr)
      (top_cause stall.attr);
    clean @ [ stall ]

  (* Minor words per recorded op, measured exactly like the test-suite
     pin: warm the top-K rings first, then a 100k-op window that must
     allocate literally nothing. *)
  let alloc_words_per_record () =
    let r = L.recorder ~n_processes:1 ~n_kinds:Qs_workload.Spec.n_kinds () in
    for i = 1 to 1_024 do
      L.observe r ~pid:0 ~kind:(i mod 3) ~start:i ~dur:(i land 4095)
    done;
    let n = 100_000 in
    let w0 = Gc.minor_words () in
    for i = 1 to n do
      L.observe r ~pid:0 ~kind:(i mod 3) ~start:i ~dur:(i land 4095)
    done;
    (Gc.minor_words () -. w0) /. float_of_int n

  (* Same real-domain run with and without the recorder: the off run is
     the product configuration, the on run bounds what always-on latency
     recording costs (one coarse-clock read per side of the op plus the
     histogram increment). *)
  let throughput_ab ~quick =
    let ds = Qs_harness.Cset.List and scheme = Qs_smr.Scheme.Cadence in
    let workload = Qs_workload.Spec.make ~key_range:512 ~update_pct:50 in
    let duration_ms = if quick then 50 else 200 in
    let base =
      { (Qs_harness.Real_exp.default_setup ~ds ~scheme ~n_domains:2 ~workload) with
        duration_ms;
        seed = 42 }
    in
    let off = Qs_harness.Real_exp.run base in
    let rec_ =
      L.recorder ~n_processes:2 ~n_kinds:Qs_workload.Spec.n_kinds ()
    in
    let on = Qs_harness.Real_exp.run { base with latency = Some rec_ } in
    ( off.Qs_harness.Real_exp.throughput_mops,
      on.Qs_harness.Real_exp.throughput_mops,
      L.count (L.merged rec_) )

  type report = {
    lat_rows : row list;
    alloc_words : float;
    mops_off : float;
    mops_on : float;
    recorded_on : int;
  }

  let overhead_pct rep =
    if rep.mops_off <= 0. then 0.
    else 100. *. (1. -. (rep.mops_on /. rep.mops_off))

  let run ~quick =
    let lat_rows = rows ~quick in
    let alloc_words = alloc_words_per_record () in
    let mops_off, mops_on, recorded_on = throughput_ab ~quick in
    { lat_rows; alloc_words; mops_off; mops_on; recorded_on }

  let print_tables rep =
    let tbl =
      Qs_util.Table.create
        [ "structure"; "scheme"; "procs"; "stall"; "ops"; "p50"; "p99";
          "p999"; "max"; "spikes"; "attr %"; "top cause" ]
    in
    List.iter
      (fun r ->
        Qs_util.Table.add_row tbl
          [ Qs_harness.Cset.kind_to_string r.ds;
            Qs_smr.Scheme.to_string r.scheme;
            string_of_int r.n;
            string_of_bool r.stall;
            string_of_int r.ops;
            string_of_int r.p50;
            string_of_int r.p99;
            string_of_int r.p999;
            string_of_int r.lmax;
            string_of_int r.attr.M.attr_total;
            Printf.sprintf "%.0f" (M.attributed_pct r.attr);
            top_cause r.attr ])
      rep.lat_rows;
    Qs_util.Table.print tbl;
    let ov = Qs_util.Table.create [ "metric"; "value" ] in
    Qs_util.Table.add_row ov
      [ "minor words/recorded op"; Printf.sprintf "%.4f" rep.alloc_words ];
    Qs_util.Table.add_row ov
      [ "real cadence/list Mops/s (recorder off)";
        Printf.sprintf "%.2f" rep.mops_off ];
    Qs_util.Table.add_row ov
      [ "real cadence/list Mops/s (recorder on)";
        Printf.sprintf "%.2f" rep.mops_on ];
    Qs_util.Table.add_row ov
      [ "recorder overhead (%)"; Printf.sprintf "%.1f" (overhead_pct rep) ];
    Qs_util.Table.add_row ov
      [ "ops recorded (on run)"; string_of_int rep.recorded_on ];
    Qs_util.Table.print ov;
    print_newline ()
end

(* --- KV service observatory (--service) ----------------------------------- *)

(* The epoch-protected KV service (DESIGN.md §15) measured end to end:

   - a sim matrix {qsbr, hp, cadence, qsense} × {uniform, zipfian}: four
     worker processes replay a multi-tenant trace (60/20/10/10
     get/put/del/scan, bursty open-loop arrivals) against the sharded
     service with handler churn live, recording per-op-kind latency
     histograms — p50/p99/p999 in virtual ticks per kind, plus the
     whole-run p999 spike attribution against the reclamation trace;
   - the robustness row: QSense at C = 48 with a stalled victim and a
     hot keyspace, closed loop, so the service dwells in fallback and
     the p999 bucket IS fallback dwell. CI gates its attribution ≥ 80%;
   - a real-domain row: wall-clock Mops through the same service with
     handler churn across domain generations;
   - the zero-alloc pin: minor words per [Kv.get] on the real runtime —
     the read-only bucket probe plus scheme quiescence bookkeeping must
     allocate exactly nothing. *)
module Service_obs = struct
  module L = Qs_obs.Latency
  module M = Qs_obs.Metrics
  module Ksp = Qs_workload.Kv_spec
  module Sv = Qs_service.Service_sim

  type kind_row = { kops : int; kp50 : int; kp99 : int; kp999 : int }

  type row = {
    scheme : Qs_smr.Scheme.kind;
    dist : Ksp.dist;
    stall : bool;
    ops : int;
    violations : int;
    churn_events : int;
    leak_ok : bool;
    kinds : (string * kind_row) list;
    p999 : int;
    attr : M.attribution;
  }

  let dist_name = function Ksp.Uniform -> "uniform" | Ksp.Zipfian _ -> "zipfian"

  let mix = { Ksp.get_pct = 60; put_pct = 20; del_pct = 10; scan_pct = 10 }

  (* The stall row trades read-heaviness for retire pressure: the victim
     pins its epoch over a 32-key space while the survivors' deletes push
     QSense over the switch threshold, as in the latency observatory's
     calibrated scenario. No scans: range restarts under this much delete
     churn are their own (legitimate) spike source and would dilute the
     fallback attribution this row exists to measure. *)
  let stall_mix = { Ksp.get_pct = 34; put_pct = 33; del_pct = 33; scan_pct = 0 }

  (* The open-loop gap provisions each worker just under the slowest
     scheme's simulated service rate (~1.6k ticks/request for HP), so
     steady state is un-queued for every scheme and the tail comes from
     bursts (gap/4 for 8 requests every 64) and reclamation pauses, not
     from a permanently growing backlog. *)
  let make_gen ~dist ~stall ~n =
    let spec =
      if stall then Ksp.make ~keys_per_tenant:32 ~mix:stall_mix ()
      else
        Ksp.make ~tenants:2 ~dist ~keys_per_tenant:2_048 ~mix ~scan_span:16
          ~base_gap:2_000
          ~burst:{ Ksp.every = 64; len = 8; factor = 4 }
          ()
    in
    Qs_workload.Kv_gen.make spec ~n_processes:n ~ops_per_process:4_096 ~seed:23

  let sim_row ~quick ~scheme ~dist ~stall =
    let n = 4 in
    let gen = make_gen ~dist ~stall ~n in
    let rec_ = L.recorder ~n_processes:n ~n_kinds:Ksp.n_kinds () in
    let tracer = Qs_obs.Tracer.create ~n_processes:n ~capacity:(1 lsl 15) () in
    let duration =
      if stall then 600_000 else if quick then 150_000 else 400_000
    in
    let setup =
      { (Sv.default_setup ~scheme ~n_processes:n ~gen) with
        Sv.duration;
        seed = 23;
        n_shards = 4;
        latency = Some rec_;
        sink = Some (Qs_obs.Tracer.sink tracer);
        churn =
          (if stall then None
           else Some { Sv.every_ops = 40; downtime = 2_000 });
        faults =
          (if stall then
             [ Qs_sim.Scheduler.Stall_at
                 { pid = n - 1; at = 20_000; ticks = duration } ]
           else []);
        smr_tweak =
          (if stall then
             fun c -> { c with Qs_smr.Smr_intf.switch_threshold = 48 }
           else Fun.id) }
    in
    let r = Sv.run setup in
    let merged = L.merged rec_ in
    let threshold = L.lower_edge (L.percentile_bucket merged 99.9) in
    let attr =
      M.attribute_spikes
        (Qs_obs.Tracer.to_array tracer)
        ~outliers:(L.outliers rec_) ~threshold
    in
    let kinds =
      List.init Ksp.n_kinds (fun k ->
          let h = L.merged_kind rec_ ~kind:k in
          ( Ksp.kind_name k,
            { kops = r.Sv.per_kind_ops.(k);
              kp50 = L.percentile h 50.;
              kp99 = L.percentile h 99.;
              kp999 = L.percentile h 99.9 } ))
    in
    { scheme;
      dist;
      stall;
      ops = r.Sv.ops_total;
      violations = r.Sv.violations;
      churn_events = r.Sv.churn_events;
      leak_ok =
        (match r.Sv.leak_check with `Ok | `Skipped -> true | `Leaked _ -> false);
      kinds;
      p999 = L.percentile merged 99.9;
      attr }

  let rows ~quick =
    let matrix =
      List.concat_map
        (fun scheme ->
          List.map
            (fun dist ->
              let r = sim_row ~quick ~scheme ~dist ~stall:false in
              Printf.printf
                "  %-9s %-8s: %6d reqs, p999 %7d ticks, %d churns%s\n%!"
                (Qs_smr.Scheme.to_string scheme)
                (dist_name r.dist) r.ops r.p999 r.churn_events
                (if r.leak_ok then "" else " LEAK");
              r)
            [ Ksp.Uniform; Ksp.Zipfian 0.9 ])
        Latency_obs.schemes
    in
    let stall =
      sim_row ~quick ~scheme:Qs_smr.Scheme.Qsense ~dist:Ksp.Uniform
        ~stall:true
    in
    Printf.printf
      "  stall row: p999 %d ticks, %d spikes, %.0f%% attributed (top %s)\n%!"
      stall.p999 stall.attr.M.attr_total
      (M.attributed_pct stall.attr)
      (Latency_obs.top_cause stall.attr);
    matrix @ [ stall ]

  (* Minor words per [Kv.get]: the shard route (Fibonacci multiply +
     shift), the read-only bucket probe and the scheme's amortized
     quiescence round, measured over a 200k-request window after warmup.
     Must be exactly 0 — this is the pin CI gates on. *)
  let get_alloc_words () =
    let module K = Qs_service.Service_real.K in
    let base =
      { (Qs_ds.Set_intf.default_config ~n_processes:1
           ~scheme:Qs_smr.Scheme.Qsense)
        with Qs_ds.Set_intf.debug_checks = false }
    in
    let svc = K.create ~n_shards:4 base in
    let c = K.register svc ~pid:0 in
    for k = 0 to 511 do
      ignore (K.put c (2 * k))
    done;
    for i = 1 to 4_096 do
      ignore (K.get c (i land 1023))
    done;
    let nops = 200_000 in
    let w0 = Gc.minor_words () in
    for i = 1 to nops do
      ignore (K.get c (i land 1023))
    done;
    (Gc.minor_words () -. w0) /. float_of_int nops

  type real_row = {
    r_scheme : Qs_smr.Scheme.kind;
    r_domains : int;
    r_ops : int;
    r_mops : float;
    r_violations : int;
    r_failed : bool;
    r_churn : int;
  }

  let real_row ~quick =
    let n = if quick then 2 else 4 in
    let spec =
      Ksp.make ~tenants:2 ~dist:(Ksp.Zipfian 0.9) ~keys_per_tenant:2_048
        ~mix ~scan_span:16 ()
    in
    let gen =
      Qs_workload.Kv_gen.make spec ~n_processes:n ~ops_per_process:8_192
        ~seed:42
    in
    let setup =
      { (Qs_service.Service_real.default_setup
           ~scheme:Qs_smr.Scheme.Qsense ~n_domains:n ~gen)
        with
        Qs_service.Service_real.duration_ms = (if quick then 50 else 200);
        churn = Some { Qs_service.Service_real.generations = 2; downtime_ms = 2 } }
    in
    let r = Qs_service.Service_real.run setup in
    { r_scheme = Qs_smr.Scheme.Qsense;
      r_domains = n;
      r_ops = r.Qs_service.Service_real.ops_total;
      r_mops = r.Qs_service.Service_real.throughput_mops;
      r_violations = r.Qs_service.Service_real.violations;
      r_failed = r.Qs_service.Service_real.failed;
      r_churn = r.Qs_service.Service_real.churn_events }

  type report = {
    svc_rows : row list;  (** matrix rows, stall row last *)
    real : real_row;
    get_alloc_words : float;
  }

  let run ~quick =
    let svc_rows = rows ~quick in
    let real = real_row ~quick in
    let get_alloc_words = get_alloc_words () in
    { svc_rows; real; get_alloc_words }

  let print_tables rep =
    let tbl =
      Qs_util.Table.create
        [ "scheme"; "dist"; "stall"; "reqs"; "viol"; "churns";
          "get p50/p999"; "put p999"; "scan p999"; "p999"; "attr %" ]
    in
    List.iter
      (fun r ->
        let kr name = List.assoc name r.kinds in
        Qs_util.Table.add_row tbl
          [ Qs_smr.Scheme.to_string r.scheme;
            dist_name r.dist;
            string_of_bool r.stall;
            string_of_int r.ops;
            string_of_int r.violations;
            string_of_int r.churn_events;
            Printf.sprintf "%d/%d" (kr "get").kp50 (kr "get").kp999;
            string_of_int (kr "put").kp999;
            string_of_int (kr "scan").kp999;
            string_of_int r.p999;
            Printf.sprintf "%.0f" (M.attributed_pct r.attr) ])
      rep.svc_rows;
    Qs_util.Table.print tbl;
    let ov = Qs_util.Table.create [ "metric"; "value" ] in
    Qs_util.Table.add_row ov
      [ "minor words per get (real, qsense)";
        Printf.sprintf "%.4f" rep.get_alloc_words ];
    Qs_util.Table.add_row ov
      [ Printf.sprintf "real %s x%d Mops/s (churned)"
          (Qs_smr.Scheme.to_string rep.real.r_scheme)
          rep.real.r_domains;
        Printf.sprintf "%.2f" rep.real.r_mops ];
    Qs_util.Table.add_row ov
      [ "real requests / violations";
        Printf.sprintf "%d / %d" rep.real.r_ops rep.real.r_violations ];
    Qs_util.Table.print ov;
    print_newline ()
end

(* --- JSON report (schema 9) ----------------------------------------------- *)

(* Consumed by CI (regression guards), by [bench/trend.exe] (committed
   BENCH_HISTORY.jsonl diffing) and by EXPERIMENTS.md readers.
   Schema 9 = schema 8's sections ("retire_scan", "bags", "membership",
   "e2e", "rivals", "trace", "latency", "explorer", the "churn" flag)
   plus a "service" section ([null] unless the bench ran with
   [--service]): the KV service's get-path zero-alloc pin, a real-domain
   churned-throughput row, and one sim row per {scheme × key
   distribution} — requests, violations, churn events, leak check,
   per-op-kind p50/p99/p999 in virtual ticks, and the whole-run p999
   spike attribution. The last row is the QSense stall scenario; CI
   gates its attribution ≥ 80%. The "latency" section is as in schema 8
   (the [--latency] observatory; its last row's attribution is gated the
   same way). The "explorer" section is emitted as [null] here;
   [explore.exe profile --out out/BENCH_RESULTS.json] fills it in (the
   numbers belong to the explorer binary, which owns the representative
   case mix). *)
let emit_json ~path ~quick ~churn ~retire_scan ~bag_alloc_words ~membership
    ~e2e ~rivals ~(trace : Observatory.overhead)
    ~(latency : Latency_obs.report option)
    ~(service : Service_obs.report option) =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"schema\": 9,\n";
  Printf.fprintf oc "  \"explorer\": null,\n";
  Printf.fprintf oc "  \"quick\": %b,\n" quick;
  Printf.fprintf oc "  \"churn\": %b,\n" churn;
  Printf.fprintf oc "  \"n_processes\": %d,\n" Micro.n_processes;
  Printf.fprintf oc "  \"hp_per_process\": %d,\n" Micro.hp_per_process;
  Printf.fprintf oc "  \"retire_scan\": [\n";
  let n = List.length retire_scan in
  List.iteri
    (fun i (r : Micro.result) ->
      Printf.fprintf oc
        "    {\"scenario\": \"%s\", \"limbo\": %d, \"list_ns_per_op\": %.2f, \
         \"vec_ns_per_op\": %.2f, \"speedup\": %.3f}%s\n"
        (Micro.scenario_name r.scenario)
        r.limbo r.list_ns r.vec_ns (Micro.speedup r)
        (if i = n - 1 then "" else ","))
    retire_scan;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"bags\": {\n";
  Printf.fprintf oc "    \"capacity\": %d,\n"
    (Qs_smr.Smr_intf.default_config ~n_processes:Micro.n_processes
       ~hp_per_process:Micro.hp_per_process)
      .Qs_smr.Smr_intf.bag_capacity;
  Printf.fprintf oc "    \"retire_alloc_words\": %.1f,\n" bag_alloc_words;
  Printf.fprintf oc "    \"rows\": [\n";
  let n = List.length retire_scan in
  List.iteri
    (fun i (r : Micro.result) ->
      Printf.fprintf oc
        "      {\"scenario\": \"%s\", \"limbo\": %d, \"vec_ns_per_op\": \
         %.2f, \"bag_ns_per_op\": %.2f, \"speedup\": %.3f}%s\n"
        (Micro.scenario_name r.scenario)
        r.limbo r.vec_ns r.bag_ns (Micro.bag_speedup r)
        (if i = n - 1 then "" else ","))
    retire_scan;
  Printf.fprintf oc "    ]\n";
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"membership\": [\n";
  let n = List.length membership in
  List.iteri
    (fun i (r : Membership.result) ->
      Printf.fprintf oc
        "    {\"nk\": %d, \"k\": %d, \"probes\": %d, \"sorted_ns_per_op\": \
         %.2f, \"hash_ns_per_op\": %.2f, \"speedup\": %.3f}%s\n"
        r.nk r.k Membership.probes r.sorted_ns r.hash_ns (Membership.speedup r)
        (if i = n - 1 then "" else ","))
    membership;
  Printf.fprintf oc "  ],\n";
  let emit_e2e_rows rows =
    let n = List.length rows in
    List.iteri
      (fun i (r : E2e.result) ->
        Printf.fprintf oc
          "    {\"ds\": \"%s\", \"scheme\": \"%s\", \"domains\": %d, \
           \"throughput_mops\": %.4f, \"retired_peak\": %d, \"reuse_ratio\": \
           %.4f, \"violations\": %d, \"failed\": %b, \"churn_events\": %d}%s\n"
          (Qs_harness.Cset.kind_to_string r.ds)
          (Qs_smr.Scheme.to_string r.scheme)
          r.n_domains r.throughput_mops r.retired_peak r.reuse_ratio
          r.violations r.failed r.churn_events
          (if i = n - 1 then "" else ","))
      rows
  in
  Printf.fprintf oc "  \"e2e\": [\n";
  emit_e2e_rows e2e;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"rivals\": [\n";
  emit_e2e_rows rivals;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"trace\": {\n";
  Printf.fprintf oc "    \"alloc_words_per_event_disabled\": %.4f,\n"
    trace.Observatory.alloc_disabled;
  Printf.fprintf oc "    \"alloc_words_per_event_enabled\": %.4f,\n"
    trace.Observatory.alloc_enabled;
  Printf.fprintf oc "    \"real_mops_sink_off\": %.4f,\n"
    trace.Observatory.mops_sink_off;
  Printf.fprintf oc "    \"real_mops_sink_on\": %.4f,\n"
    trace.Observatory.mops_sink_on;
  Printf.fprintf oc "    \"events_recorded_sink_on\": %d\n"
    trace.Observatory.events_on;
  Printf.fprintf oc "  },\n";
  (match latency with
  | None -> Printf.fprintf oc "  \"latency\": null,\n"
  | Some rep ->
    Printf.fprintf oc "  \"latency\": {\n";
    Printf.fprintf oc "    \"alloc_words_per_record\": %.4f,\n"
      rep.Latency_obs.alloc_words;
    Printf.fprintf oc "    \"real_mops_recorder_off\": %.4f,\n"
      rep.Latency_obs.mops_off;
    Printf.fprintf oc "    \"real_mops_recorder_on\": %.4f,\n"
      rep.Latency_obs.mops_on;
    Printf.fprintf oc "    \"overhead_pct\": %.2f,\n"
      (Latency_obs.overhead_pct rep);
    Printf.fprintf oc "    \"ops_recorded_on\": %d,\n"
      rep.Latency_obs.recorded_on;
    Printf.fprintf oc "    \"rows\": [\n";
    let n = List.length rep.Latency_obs.lat_rows in
    List.iteri
      (fun i (r : Latency_obs.row) ->
        let attr_fields =
          String.concat ", "
            (List.map
               (fun (c, k) ->
                 Printf.sprintf "\"%s\": %d" (Qs_obs.Metrics.cause_name c) k)
               r.attr.Qs_obs.Metrics.attr_counts)
        in
        Printf.fprintf oc
          "      {\"ds\": \"%s\", \"scheme\": \"%s\", \"procs\": %d, \
           \"stall\": %b, \"ops\": %d, \"p50\": %d, \"p99\": %d, \
           \"p999\": %d, \"max\": %d, \"p999_samples\": %d, \
           \"attr_pct\": %.2f, \"attr\": {%s}}%s\n"
          (Qs_harness.Cset.kind_to_string r.ds)
          (Qs_smr.Scheme.to_string r.scheme)
          r.n r.stall r.ops r.p50 r.p99 r.p999 r.lmax
          r.attr.Qs_obs.Metrics.attr_total
          (Qs_obs.Metrics.attributed_pct r.attr)
          attr_fields
          (if i = n - 1 then "" else ","))
      rep.Latency_obs.lat_rows;
    Printf.fprintf oc "    ]\n";
    Printf.fprintf oc "  },\n");
  (match service with
  | None -> Printf.fprintf oc "  \"service\": null\n"
  | Some rep ->
    Printf.fprintf oc "  \"service\": {\n";
    Printf.fprintf oc "    \"get_alloc_words_per_op\": %.4f,\n"
      rep.Service_obs.get_alloc_words;
    let rr = rep.Service_obs.real in
    Printf.fprintf oc
      "    \"real\": {\"scheme\": \"%s\", \"domains\": %d, \"ops\": %d, \
       \"throughput_mops\": %.4f, \"violations\": %d, \"failed\": %b, \
       \"churn_events\": %d},\n"
      (Qs_smr.Scheme.to_string rr.Service_obs.r_scheme)
      rr.Service_obs.r_domains rr.Service_obs.r_ops rr.Service_obs.r_mops
      rr.Service_obs.r_violations rr.Service_obs.r_failed
      rr.Service_obs.r_churn;
    Printf.fprintf oc "    \"rows\": [\n";
    let n = List.length rep.Service_obs.svc_rows in
    List.iteri
      (fun i (r : Service_obs.row) ->
        let kinds_json =
          String.concat ", "
            (List.map
               (fun (name, (k : Service_obs.kind_row)) ->
                 Printf.sprintf
                   "\"%s\": {\"ops\": %d, \"p50\": %d, \"p99\": %d, \
                    \"p999\": %d}"
                   name k.Service_obs.kops k.Service_obs.kp50
                   k.Service_obs.kp99 k.Service_obs.kp999)
               r.Service_obs.kinds)
        in
        let attr_fields =
          String.concat ", "
            (List.map
               (fun (c, k) ->
                 Printf.sprintf "\"%s\": %d" (Qs_obs.Metrics.cause_name c) k)
               r.Service_obs.attr.Qs_obs.Metrics.attr_counts)
        in
        Printf.fprintf oc
          "      {\"scheme\": \"%s\", \"dist\": \"%s\", \"stall\": %b, \
           \"ops\": %d, \"violations\": %d, \"churn_events\": %d, \
           \"leak_ok\": %b, \"p999\": %d, \"p999_samples\": %d, \
           \"attr_pct\": %.2f, \"attr\": {%s}, \"kinds\": {%s}}%s\n"
          (Qs_smr.Scheme.to_string r.Service_obs.scheme)
          (Service_obs.dist_name r.Service_obs.dist)
          r.Service_obs.stall r.Service_obs.ops r.Service_obs.violations
          r.Service_obs.churn_events r.Service_obs.leak_ok
          r.Service_obs.p999
          r.Service_obs.attr.Qs_obs.Metrics.attr_total
          (Qs_obs.Metrics.attributed_pct r.Service_obs.attr)
          attr_fields kinds_json
          (if i = n - 1 then "" else ","))
      rep.Service_obs.svc_rows;
    Printf.fprintf oc "    ]\n";
    Printf.fprintf oc "  }\n");
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" path

let () =
  let argv = Array.to_list Sys.argv in
  let quick = List.mem "--quick" argv in
  let micro_only = List.mem "--micro-only" argv in
  let e2e = List.mem "--e2e" argv in
  let churn = List.mem "--churn" argv in
  let trace = List.mem "--trace" argv in
  let latency = List.mem "--latency" argv in
  let service = List.mem "--service" argv in
  R.register_self 0;
  (* roosters give Cadence/QSense their coarse clock and wake-up guarantee *)
  let roosters = Qs_real.Roosters.start ~interval_ns:2_000_000 ~n:1 in
  if not micro_only then begin
    ignore
      (run_group "primitives (real x86 costs)"
         (Test.make_grouped ~name:"prim" primitives));
    if not quick then begin
      ignore
        (run_group "fig3: list, 10% updates"
           (List_b.group ~group_name:"fig3" ~update_pct:10));
      let list_r = run_group "fig5-top: list, 50% updates" (List_b.group ~group_name:"list50" ~update_pct:50) in
      let skip_r = run_group "fig5-top: skiplist, 50% updates" (Skip_b.group ~group_name:"skip50" ~update_pct:50) in
      let bst_r = run_group "fig5-top: bst, 50% updates" (Bst_b.group ~group_name:"bst50" ~update_pct:50) in
      let hash_r = run_group "extra: hashtable, 50% updates" (Hash_b.group ~group_name:"hash50" ~update_pct:50) in
      ignore (run_group "extra: treiber stack, push+pop" (Stack_b.group ()));
      ignore (run_group "extra: michael-scott queue, enq+deq" (Queue_b.group ()));
      Printf.printf "== §7.3-style overhead table (derived from ns/op above) ==\n%!";
      overhead_table
        [ ("list", list_r); ("skiplist", skip_r); ("bst", bst_r); ("hashtable", hash_r) ]
    end
  end;
  Printf.printf
    "== retire/scan microbenchmark (vec + hash scan set vs seed list impl) ==\n%!";
  (* --quick must keep at least one limbo >= 10^4 point: the CI speedup
     guard (bag vs vec) gates on that size class. *)
  let sizes = if quick then [ 100; 1_000; 10_000 ] else [ 100; 1_000; 10_000; 100_000 ] in
  let target_ops = if quick then 200_000 else 2_000_000 in
  let results = Micro.run ~sizes ~target_ops in
  Micro.print_table results;
  let bag_alloc_words = Micro.bag_retire_alloc_words ~limbo:10_000 in
  Printf.printf "bag retire path steady-state allocation: %.0f words / 10000 retires\n\n%!"
    bag_alloc_words;
  Printf.printf
    "== HP membership: hash scan set vs sorted-id reference (per probe, snapshot amortized) ==\n%!";
  let membership = Membership.run ~quick in
  Membership.print_table membership;
  let e2e_results =
    if e2e then begin
      Printf.printf "== end-to-end sweep on real domains (%s%s) ==\n%!"
        (if quick then "quick" else "full")
        (if churn then ", with worker churn" else "");
      let rs = E2e.run ~quick ~churn in
      E2e.print_table rs;
      rs
    end
    else []
  in
  let rival_results =
    if e2e then begin
      Printf.printf "== rival schemes on real domains (debra-plus, hyaline) ==\n%!";
      let rs = E2e.run_rivals ~quick ~churn in
      E2e.print_table rs;
      rs
    end
    else []
  in
  if trace then Observatory.dashboard ();
  Printf.printf "== tracing overhead (sink off vs on, alloc per event) ==\n%!";
  let trace_overhead = Observatory.overhead ~quick in
  Observatory.print_overhead trace_overhead;
  let latency_report =
    if latency then begin
      Printf.printf
        "== latency observatory (--latency): per-op histograms + p999 \
         attribution ==\n%!";
      let rep = Latency_obs.run ~quick in
      Latency_obs.print_tables rep;
      Some rep
    end
    else None
  in
  let service_report =
    if service then begin
      Printf.printf
        "== KV service observatory (--service): sharded store, open-loop \
         traces ==\n%!";
      let rep = Service_obs.run ~quick in
      Service_obs.print_tables rep;
      Some rep
    end
    else None
  in
  emit_json ~path:(out_path "BENCH_RESULTS.json") ~quick ~churn
    ~retire_scan:results ~bag_alloc_words ~membership ~e2e:e2e_results
    ~rivals:rival_results ~trace:trace_overhead ~latency:latency_report
    ~service:service_report;
  Qs_real.Roosters.stop roosters;
  (* The multi-core figures come from the simulator: *)
  print_endline "Scalability and robustness figures (multi-core) are produced by the";
  print_endline "deterministic simulator: `dune exec bin/repro.exe -- all [--scale full]`."
