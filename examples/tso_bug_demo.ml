(* Why you cannot just delete the fence: the paper's Algorithm 2, live.

   Run with:  dune exec examples/tso_bug_demo.exe

   Under TSO (x86), a hazard-pointer STORE may be delayed in the writer's
   store buffer past the subsequent validation LOAD. A reclaimer scanning
   the hazard-pointer array then misses the protection and frees a node the
   reader is about to dereference.

   The simulator models store buffers faithfully, so we can show all three
   outcomes side by side on the same workload:

   - unsafe-hp  : hazard pointers WITHOUT the fence    -> use-after-free
   - hp         : classic hazard pointers (fenced)     -> safe, slow
   - cadence    : no fence, rooster processes + deferred reclamation
                  (the paper's fix)                    -> safe AND fast *)

open Qs_harness

let run scheme =
  let violations, tput =
    List.fold_left
      (fun (v, tp) seed ->
        let r =
          Sim_exp.run
            { (Sim_exp.default_setup ~ds:Cset.List ~scheme ~n_processes:4
                 ~workload:(Qs_workload.Spec.make ~key_range:16 ~update_pct:40)) with
              seed;
              duration = 400_000;
              smr_tweak =
                (fun c ->
                  { c with
                    quiescence_threshold = 4;
                    scan_threshold = 1;
                    scan_factor = 0.; (* scan every retire: the bug window is per-scan *)
                    rooster_interval = 2_000;
                    epsilon = 300 });
              sched_tweak =
                (fun c ->
                  { c with
                    (* adversarial asynchrony: long stalls and big store
                       buffers widen the reordering window *)
                    store_buffer_capacity = 100_000;
                    rooster_interval =
                      (if Qs_smr.Scheme.needs_roosters scheme then Some 2_000
                       else None);
                    cost =
                      { Qs_sim.Scheduler.default_cost with
                        stall_prob = 0.005;
                        stall_max = 3_000 } }) }
        in
        (v + r.violations, tp +. r.throughput))
      (0, 0.)
      [ 1; 2; 3; 4; 5; 6 ]
  in
  Printf.printf "%-10s use-after-free: %-4d   throughput: %.0f ops/Mtick\n"
    (Qs_smr.Scheme.to_string scheme) violations (tput /. 6.)

let () =
  print_endline "Hazard pointers under TSO, 4 processes, 6 seeds:";
  print_newline ();
  List.iter run
    [ Qs_smr.Scheme.Unsafe_hp; Qs_smr.Scheme.Hp; Qs_smr.Scheme.Cadence ];
  print_newline ();
  print_endline "unsafe-hp reclaims nodes readers still hold (the Algorithm-2";
  print_endline "interleaving); the fence fixes it at a steep cost; Cadence";
  print_endline "fixes it for free via rooster-forced context switches plus";
  print_endline "deferred reclamation."
